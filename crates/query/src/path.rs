//! Path expressions: the XPath subset of §2.
//!
//! A [`PathExpr`] is a non-empty sequence of [`Step`]s. Each step selects
//! elements with a given label along the child (`/`) or descendant
//! (`//`) axis and may carry existential branching predicates `[l̄]`,
//! each of which is itself a path expression evaluated relative to the
//! step's element. The paper calls the predicate-free spine the *main
//! path* (§4.3) and handles predicates separately in `EVALEMBED`.

use axqa_xml::{LabelId, LabelTable};
use std::fmt;

/// Comparison operator of a value predicate (`[. > 1995]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl ValueOp {
    /// The operator's textual form.
    pub fn as_str(self) -> &'static str {
        match self {
            ValueOp::Lt => "<",
            ValueOp::Le => "<=",
            ValueOp::Eq => "=",
            ValueOp::Ge => ">=",
            ValueOp::Gt => ">",
        }
    }

    /// Applies the comparison.
    pub fn test(self, value: f64, constant: f64) -> bool {
        match self {
            ValueOp::Lt => value < constant,
            ValueOp::Le => value <= constant,
            ValueOp::Eq => value == constant,
            ValueOp::Ge => value >= constant,
            ValueOp::Gt => value > constant,
        }
    }
}

/// A predicate on an element's numeric value: `[. op constant]` — the
/// paper's declared future-work extension (§1 scopes values out of the
/// core study). An element with no value never satisfies one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValuePred {
    /// Comparison operator.
    pub op: ValueOp,
    /// Constant to compare against.
    pub constant: f64,
}

impl ValuePred {
    /// Whether `value` (if any) satisfies the predicate.
    pub fn test(&self, value: Option<f64>) -> bool {
        value.is_some_and(|v| self.op.test(v, self.constant))
    }
}

impl fmt::Display for ValuePred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[. {} {}]", self.op.as_str(), self.constant)
    }
}

impl std::hash::Hash for ValuePred {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.op.hash(state);
        self.constant.to_bits().hash(state);
    }
}

impl Eq for ValuePred {}

/// Navigation axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/label` — immediate children.
    Child,
    /// `//label` — descendants at any depth ≥ 1.
    ///
    /// Following the paper's examples (e.g. `//a` from the document root
    /// selects *proper* descendants), the axis is interpreted as
    /// "descendant", not "descendant-or-self", relative to the context
    /// element.
    Descendant,
}

impl Axis {
    /// The textual prefix of the axis.
    pub fn as_str(self) -> &'static str {
        match self {
            Axis::Child => "/",
            Axis::Descendant => "//",
        }
    }
}

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    /// The axis connecting this step to the previous context.
    pub axis: Axis,
    /// Required element label.
    pub label: String,
    /// Existential branching predicates evaluated at this step.
    pub predicates: Vec<PathExpr>,
    /// Value predicates on the step's own element (`[. > c]`).
    pub value_preds: Vec<ValuePred>,
}

impl Step {
    /// A predicate-free step.
    pub fn new(axis: Axis, label: impl Into<String>) -> Step {
        Step {
            axis,
            label: label.into(),
            predicates: Vec::new(),
            value_preds: Vec::new(),
        }
    }
}

/// A path expression: one or more steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathExpr {
    /// The steps, outermost first.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// Builds a path from steps.
    ///
    /// # Panics
    /// Panics if `steps` is empty: a path has at least one step.
    pub fn new(steps: Vec<Step>) -> PathExpr {
        assert!(!steps.is_empty(), "a path expression has at least one step");
        PathExpr { steps }
    }

    /// A single-step child path `/label`.
    pub fn child(label: impl Into<String>) -> PathExpr {
        PathExpr::new(vec![Step::new(Axis::Child, label)])
    }

    /// A single-step descendant path `//label`.
    pub fn descendant(label: impl Into<String>) -> PathExpr {
        PathExpr::new(vec![Step::new(Axis::Descendant, label)])
    }

    /// Appends a step, builder style.
    pub fn then(mut self, axis: Axis, label: impl Into<String>) -> PathExpr {
        self.steps.push(Step::new(axis, label));
        self
    }

    /// Attaches a predicate to the *last* step, builder style.
    ///
    /// # Panics
    ///
    /// If the path has no steps to attach the predicate to.
    pub fn with_predicate(mut self, predicate: PathExpr) -> PathExpr {
        match self.steps.last_mut() {
            Some(last) => last.predicates.push(predicate),
            None => panic!("with_predicate on an empty path"),
        }
        self
    }

    /// The *main path*: this expression with all predicates stripped
    /// (§4.3, `EVALQUERY` line 4).
    pub fn main_path(&self) -> PathExpr {
        PathExpr {
            steps: self
                .steps
                .iter()
                .map(|s| Step::new(s.axis, s.label.clone()))
                .collect(),
        }
    }

    /// Attaches a value predicate to the *last* step, builder style.
    ///
    /// # Panics
    ///
    /// If the path has no steps to attach the predicate to.
    pub fn with_value_pred(mut self, pred: ValuePred) -> PathExpr {
        match self.steps.last_mut() {
            Some(last) => last.value_preds.push(pred),
            None => panic!("with_value_pred on an empty path"),
        }
        self
    }

    /// Whether any step carries a predicate.
    pub fn has_predicates(&self) -> bool {
        self.steps.iter().any(|s| !s.predicates.is_empty())
    }

    /// Number of steps, counting predicate sub-paths recursively.
    pub fn total_steps(&self) -> usize {
        self.steps
            .iter()
            .map(|s| {
                1 + s
                    .predicates
                    .iter()
                    .map(PathExpr::total_steps)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Resolves the label strings against a document's label table.
    ///
    /// Labels absent from the table resolve to `None`; any step with an
    /// unresolved label can never match in that document (evaluators use
    /// this to short-circuit to empty results rather than erroring).
    pub fn resolve(&self, labels: &LabelTable) -> ResolvedPath {
        ResolvedPath {
            steps: self
                .steps
                .iter()
                .map(|s| ResolvedStep {
                    axis: s.axis,
                    label: labels.get(&s.label),
                    predicates: s.predicates.iter().map(|p| p.resolve(labels)).collect(),
                    value_preds: s.value_preds.clone(),
                })
                .collect(),
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            write!(f, "{}{}", step.axis.as_str(), step.label)?;
            for pred in &step.predicates {
                write!(f, "[{pred}]")?;
            }
            for pred in &step.value_preds {
                write!(f, "{pred}")?;
            }
        }
        Ok(())
    }
}

/// A [`Step`] with its label resolved to a [`LabelId`] (or `None` when the
/// label does not occur in the document).
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedStep {
    /// Axis of the step.
    pub axis: Axis,
    /// Resolved label, `None` if absent from the document.
    pub label: Option<LabelId>,
    /// Resolved predicates.
    pub predicates: Vec<ResolvedPath>,
    /// Value predicates (label-free; copied verbatim).
    pub value_preds: Vec<ValuePred>,
}

/// A [`PathExpr`] resolved against a label table.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPath {
    /// Resolved steps, outermost first.
    pub steps: Vec<ResolvedStep>,
}

impl ResolvedPath {
    /// Whether every label (including inside predicates) resolved. A path
    /// with any unresolved label matches nothing.
    pub fn fully_resolved(&self) -> bool {
        self.steps
            .iter()
            .all(|s| s.label.is_some() && s.predicates.iter().all(ResolvedPath::fully_resolved))
    }

    /// The predicate-free spine.
    pub fn main_path(&self) -> ResolvedPath {
        ResolvedPath {
            steps: self
                .steps
                .iter()
                .map(|s| ResolvedStep {
                    axis: s.axis,
                    label: s.label,
                    predicates: Vec::new(),
                    value_preds: Vec::new(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_xml::LabelTable;

    #[test]
    fn display_roundtrips_structure() {
        let p = PathExpr::descendant("a")
            .with_predicate(PathExpr::descendant("b"))
            .then(Axis::Child, "c");
        assert_eq!(p.to_string(), "//a[//b]/c");
    }

    #[test]
    fn main_path_strips_predicates() {
        let p = PathExpr::descendant("a")
            .with_predicate(PathExpr::child("g"))
            .then(Axis::Descendant, "f");
        assert_eq!(p.main_path().to_string(), "//a//f");
        assert!(p.has_predicates());
        assert!(!p.main_path().has_predicates());
    }

    #[test]
    fn total_steps_counts_predicates() {
        let p = PathExpr::child("d")
            .with_predicate(PathExpr::child("g"))
            .then(Axis::Descendant, "f");
        assert_eq!(p.total_steps(), 3);
    }

    #[test]
    fn resolve_marks_missing_labels() {
        let mut labels = LabelTable::new();
        labels.intern("a");
        let p = PathExpr::descendant("a").then(Axis::Child, "zz");
        let r = p.resolve(&labels);
        assert!(!r.fully_resolved());
        assert!(r.steps[0].label.is_some());
        assert!(r.steps[1].label.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_path_rejected() {
        let _ = PathExpr::new(vec![]);
    }
}
