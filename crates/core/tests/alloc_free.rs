// Integration tests opt back into panicking extractors (workspace lint
// table, DESIGN.md "Static analysis & invariants").
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Dynamic alloc-free check (ISSUE 9 tentpole): the `lint/hot-paths.toml`
//! roots are enforced alloc-free *statically* by the `hot-path-alloc`
//! lint rule; this test confirms the same claim *empirically* by running
//! the real kernels under the counting allocator and reading the
//! per-span allocation profiles out of the recorder.
//!
//! What "alloc-free" means per span (the `[[alloc-ok]]` grants in
//! `lint-baseline.toml` draw the same lines):
//!
//! - `TSBUILD.merge_loop` — the loop driver (heap pops, union-find
//!   resolution, staleness checks, candidate re-push): **exactly zero**
//!   allocations. The heap is pushed only after a pop, so it never
//!   regrows mid-loop.
//! - `TSBUILD.merge_loop.score` — `evaluate_merge` on a warmed
//!   [`ScoreScratch`]: amortized to zero. The only allocations are
//!   scratch growth to the run's high-water mark, so the total must be
//!   a sliver of `tsbuild.reevals`.
//! - `EVALQUERY` — `eval_query_with_scratch` with a pooled
//!   [`EvalScratch`]: per-query allocations are granted *output
//!   construction* (the answer is a freshly built `ResultSketch`), so
//!   the steady-state profile must be flat — re-running the identical
//!   workload on the warm scratch allocates exactly the same amount,
//!   i.e. nothing is allocated *by the loop* beyond the answers
//!   themselves.
//!
//! Kept as serial `#[test]`s in one binary would still race on the
//! process-wide recorder gate, so each test installs and uninstalls its
//! recorder under a local mutex.

use axqa_core::{eval_query_with_scratch, ts_build, BuildConfig, EvalConfig, EvalScratch};
use axqa_query::parse_twig;
use axqa_synopsis::build_stable;
use axqa_xml::parse_document;

/// The whole point of this binary: every allocation in the process goes
/// through the counting allocator, so span profiles are real counts.
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

/// The recorder gate and the tracking flag are process-wide; tests that
/// install recorders must not overlap.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Enough same-label classes per level for a long merge loop with many
/// lazy re-scorings (same shape as the PR-2 parity tests).
fn many_class_doc() -> axqa_xml::Document {
    let mut src = String::from("<r>");
    for k in 1..=40 {
        src.push_str("<p>");
        src.push_str(&"<k/>".repeat(k));
        src.push_str(&"<m/>".repeat(k % 5 + 1));
        src.push_str("</p>");
    }
    for k in 1..=20 {
        src.push_str("<q><p>");
        src.push_str(&"<k/>".repeat(k * 2));
        src.push_str("</p></q>");
    }
    src.push_str("</r>");
    parse_document(&src).unwrap()
}

#[test]
fn merge_loop_kernels_allocate_nothing_mid_loop() {
    let _gate = GATE.lock().unwrap();
    assert!(
        axqa_obs::alloc::counting_allocator_active(),
        "test binary must run under the counting allocator"
    );
    let doc = many_class_doc();
    let stable = build_stable(&doc);
    let mut config = BuildConfig::with_budget(1); // tightest budget: maximal merging
    config.threads = 1;

    let recorder = axqa_obs::Recorder::new();
    recorder.install();
    let report = ts_build(&stable, &config);
    axqa_obs::uninstall();
    let snapshot = recorder.drain();

    // The run exercised the kernels for real.
    assert!(report.merges > 0);
    let reevals = snapshot.counter("tsbuild.reevals");
    assert!(snapshot.counter("tsbuild.merges") > 0);
    assert!(reevals > 0, "budget-1 build must trigger lazy re-scoring");
    assert!(snapshot.span_count("TSBUILD.merge_loop") > 0);
    assert!(snapshot.span_count("TSBUILD.merge_loop.apply") > 0);

    // Loop driver: zero allocations, zero bytes. Exclusive attribution
    // means child spans (score/apply) own their events, so anything
    // counted here was allocated by the pop/resolve/re-push machinery
    // itself — which must not allocate at all.
    assert_eq!(
        snapshot.span_alloc_count("TSBUILD.merge_loop"),
        0,
        "merge-loop driver allocated: {:?}",
        profile(&snapshot)
    );
    assert_eq!(snapshot.span_alloc_bytes("TSBUILD.merge_loop"), 0);

    // Scoring kernel: `evaluate_merge` allocates only when the shared
    // scratch grows to a new high-water mark. Growth events must be a
    // vanishing fraction of the re-evaluations they amortize over.
    let score_allocs = snapshot.span_alloc_count("TSBUILD.merge_loop.score");
    assert!(
        score_allocs <= reevals / 8,
        "scratch growth not amortized: {score_allocs} allocation(s) over {reevals} re-evaluations"
    );
}

#[test]
fn pooled_evalquery_steady_state_allocates_only_the_answers() {
    let _gate = GATE.lock().unwrap();
    assert!(axqa_obs::alloc::counting_allocator_active());
    let doc = many_class_doc();
    let stable = build_stable(&doc);
    let sketch = ts_build(&stable, &BuildConfig::with_budget(2048)).sketch;
    let eval_config = EvalConfig::default();

    let workload = [
        "q1: q0 //p",
        "q1: q0 //p\nq2: q1 /k",
        "q1: q0 /q\nq2: q1 /p\nq3: q2 /k",
        "q1: q0 //k",
        "q1: q0 //p\nq2: q1 ? /m",
    ]
    .map(|src| parse_twig(src).unwrap());

    // One scratch serves the whole workload — the pooled serving-loop
    // configuration. The warmup pass grows it to the workload's
    // high-water mark before anything is measured.
    let mut scratch = EvalScratch::new();
    for query in &workload {
        std::hint::black_box(eval_query_with_scratch(
            &sketch,
            query,
            &eval_config,
            None,
            &mut scratch,
        ));
    }

    let mut passes = Vec::new();
    for _ in 0..2 {
        let recorder = axqa_obs::Recorder::new();
        recorder.install();
        for query in &workload {
            std::hint::black_box(eval_query_with_scratch(
                &sketch,
                query,
                &eval_config,
                None,
                &mut scratch,
            ));
        }
        axqa_obs::uninstall();
        let snapshot = recorder.drain();
        assert_eq!(snapshot.span_count("EVALQUERY"), workload.len());
        passes.push((
            snapshot.span_alloc_count("EVALQUERY"),
            snapshot.span_alloc_bytes("EVALQUERY"),
        ));
    }

    // Answers are freshly built per query (granted output construction),
    // so the count is nonzero — but on a warm scratch it is *flat*: the
    // second measured pass allocates byte-for-byte what the first did.
    // Any drift would mean the serving loop itself leaks allocations
    // into the steady state (scratch regrowth, memo churn).
    assert!(passes[0].0 > 0, "answer construction allocates");
    assert_eq!(
        passes[0], passes[1],
        "pooled EVALQUERY steady state drifted between identical passes"
    );
}

/// Per-span allocation profile for assertion failure messages.
fn profile(snapshot: &axqa_obs::Snapshot) -> Vec<(String, u64, u64)> {
    let mut names: Vec<&str> = snapshot.spans.iter().map(|s| s.name).collect();
    names.sort_unstable();
    names.dedup();
    names
        .into_iter()
        .map(|n| {
            (
                n.to_string(),
                snapshot.span_alloc_count(n),
                snapshot.span_alloc_bytes(n),
            )
        })
        .collect()
}
