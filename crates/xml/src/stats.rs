//! Document statistics used by the experiment harness (Table 1) and the
//! dataset generators' self-checks.

use crate::label::LabelId;
use crate::tree::Document;
use crate::write::serialized_len;

/// Summary statistics of one document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocStats {
    /// Total element count (the paper's "Elements" column).
    pub elements: usize,
    /// Compact serialized size in bytes (the paper's "File Size" column).
    pub file_bytes: usize,
    /// Number of distinct labels.
    pub distinct_labels: usize,
    /// Tree height (max depth, root = 0).
    pub height: u32,
    /// Maximum fan-out over all nodes.
    pub max_fanout: usize,
    /// Mean fan-out over internal nodes, 0 if the tree is a single leaf.
    pub mean_fanout: f64,
    /// Per-label element counts, indexed by `LabelId`.
    pub label_counts: Vec<usize>,
}

impl DocStats {
    /// Computes statistics for `doc` in one pass.
    pub fn compute(doc: &Document) -> DocStats {
        let mut label_counts = vec![0usize; doc.labels().len()];
        let mut max_fanout = 0usize;
        let mut internal = 0usize;
        let mut internal_children = 0usize;
        for node in doc.pre_order() {
            label_counts[doc.label(node).index()] += 1;
            let fanout = doc.child_count(node);
            max_fanout = max_fanout.max(fanout);
            if fanout > 0 {
                internal += 1;
                internal_children += fanout;
            }
        }
        DocStats {
            elements: doc.len(),
            file_bytes: serialized_len(doc),
            distinct_labels: doc.labels().len(),
            height: doc.height(),
            max_fanout,
            mean_fanout: if internal == 0 {
                0.0
            } else {
                internal_children as f64 / internal as f64
            },
            label_counts,
        }
    }

    /// Count of elements with the given label.
    pub fn count_of(&self, label: LabelId) -> usize {
        self.label_counts.get(label.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    #[test]
    fn stats_on_small_doc() {
        let doc = parse_document("<r><a><b/><b/></a><a/></r>").unwrap();
        let stats = DocStats::compute(&doc);
        assert_eq!(stats.elements, 5);
        assert_eq!(stats.distinct_labels, 3);
        assert_eq!(stats.height, 2);
        assert_eq!(stats.max_fanout, 2);
        let a = doc.labels().get("a").unwrap();
        let b = doc.labels().get("b").unwrap();
        assert_eq!(stats.count_of(a), 2);
        assert_eq!(stats.count_of(b), 2);
        // internal nodes: r (2 kids), first a (2 kids) → mean 2.0
        assert!((stats.mean_fanout - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_leaf_document() {
        let doc = parse_document("<only/>").unwrap();
        let stats = DocStats::compute(&doc);
        assert_eq!(stats.elements, 1);
        assert_eq!(stats.height, 0);
        assert_eq!(stats.mean_fanout, 0.0);
    }
}
