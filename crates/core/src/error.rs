//! The workspace error type.
//!
//! Library code in the count-carrying crates is forbidden from
//! `unwrap()`/`expect()` (workspace lint table; DESIGN.md "Static
//! analysis & invariants"), so every condition a caller can trigger with
//! data — malformed input, an empty synopsis, a selectivity ratio with a
//! zero denominator — surfaces as a typed [`AxqaError`] instead of a
//! panic. Panics remain only for internal invariants that no input can
//! violate (id-space overflow, builder-stack discipline).

use crate::io::SketchIoError;
use axqa_xml::XmlError;
use std::fmt;

/// Top-level error for fallible operations across the workspace.
#[derive(Debug)]
pub enum AxqaError {
    /// The input document was not well-formed XML.
    Xml(XmlError),
    /// A serialized TreeSketch could not be parsed.
    SketchIo(SketchIoError),
    /// The operation requires a non-empty synopsis.
    EmptySynopsis {
        /// The operation that was attempted.
        context: &'static str,
    },
    /// A selectivity ratio had a zero element count in its denominator.
    ZeroCountDivision {
        /// The ratio that was attempted.
        context: &'static str,
    },
    /// A synopsis construction was asked for a zero-byte budget: no
    /// TreeSketch (not even a single summary node) fits in 0 bytes.
    InvalidBudget {
        /// The operation that was attempted.
        context: &'static str,
    },
}

impl fmt::Display for AxqaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxqaError::Xml(e) => write!(f, "malformed XML: {e}"),
            AxqaError::SketchIo(e) => write!(f, "malformed sketch: {e}"),
            AxqaError::EmptySynopsis { context } => {
                write!(f, "{context}: synopsis has no nodes")
            }
            AxqaError::ZeroCountDivision { context } => {
                write!(f, "{context}: division by a zero element count")
            }
            AxqaError::InvalidBudget { context } => {
                write!(f, "{context}: synopsis byte budget must be at least 1 byte")
            }
        }
    }
}

impl std::error::Error for AxqaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AxqaError::Xml(e) => Some(e),
            AxqaError::SketchIo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for AxqaError {
    fn from(e: XmlError) -> AxqaError {
        AxqaError::Xml(e)
    }
}

impl From<SketchIoError> for AxqaError {
    fn from(e: SketchIoError) -> AxqaError {
        AxqaError::SketchIo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_cover_all_variants() {
        let xml: AxqaError = axqa_xml::parse_document("<a>").unwrap_err().into();
        assert!(xml.to_string().starts_with("malformed XML"));
        assert!(std::error::Error::source(&xml).is_some());

        let io: AxqaError = crate::io::from_text("garbage").unwrap_err().into();
        assert!(io.to_string().starts_with("malformed sketch"));
        assert!(std::error::Error::source(&io).is_some());

        let empty = AxqaError::EmptySynopsis {
            context: "ts_build",
        };
        assert!(empty.to_string().contains("no nodes"));
        assert!(std::error::Error::source(&empty).is_none());

        let zero = AxqaError::ZeroCountDivision {
            context: "value selectivity",
        };
        assert!(zero.to_string().contains("zero element count"));

        let budget = AxqaError::InvalidBudget {
            context: "ts_build",
        };
        assert!(budget.to_string().contains("at least 1 byte"));
        assert!(std::error::Error::source(&budget).is_none());
    }
}
