//! Intra-workspace call graph over parsed [`FnItem`]s.
//!
//! Call sites are extracted from function bodies at the token level:
//! free/path calls (`ts_build(…)`, `build::ts_build(…)`), method calls
//! (`x.evaluate_merge(…)`), and `Self::` calls (resolved against the
//! enclosing impl type). Name resolution is *suffix-qualified*: a call
//! path matches every workspace function with the same bare name whose
//! qualified path is consistent with the call's qualifiers; method
//! calls — where the receiver type is unknown without type inference —
//! conservatively match every workspace function of that name. Calls
//! that match no workspace function (std, vendor stubs) fall outside
//! the graph. See DESIGN.md §10 for the soundness caveats (method-call
//! conservatism, macro opacity).
//!
//! Alongside the edges, each body is scanned for *direct panic sites*:
//! `panic!`/`unreachable!`/`todo!`/`unimplemented!`/`assert!`-family
//! macros, `.unwrap()`/`.expect(…)`, and slice indexing `x[i]` — all
//! outside `#[cfg(test)]`. `debug_assert!` is deliberately excluded:
//! release builds compile it out, and the determinism kernels lean on
//! debug cross-checks.

use crate::parse::{is_keyword, FnItem};
use crate::token::{next_code, prev_code, TokenKind};
use crate::SourceFile;

/// Why a function can panic directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `assert!` / `assert_eq!` / `assert_ne!`.
    Assert,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// Slice/array indexing `x[i]`.
    Index,
}

impl PanicKind {
    /// Short human name for findings and snapshot messages.
    pub fn name(self) -> &'static str {
        match self {
            PanicKind::Macro => "panic-macro",
            PanicKind::Assert => "assert",
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::Index => "indexing",
        }
    }
}

/// One direct panic site inside a function body.
#[derive(Debug, Clone, Copy)]
pub struct PanicSite {
    /// What panics.
    pub kind: PanicKind,
    /// 1-based line of the site.
    pub line: u32,
}

/// The workspace call graph: one node per [`FnItem`], edges by index.
#[derive(Debug)]
pub struct CallGraph {
    /// Every parsed function, across all files, in file order.
    pub items: Vec<FnItem>,
    /// `calls[i]` — indices of workspace functions item `i` may call
    /// (deduplicated, sorted).
    pub calls: Vec<Vec<usize>>,
    /// `sites[i]` — direct panic sites in item `i`'s body.
    pub sites: Vec<Vec<PanicSite>>,
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: [&str; 3] = ["assert", "assert_eq", "assert_ne"];

/// Builds the graph for `files` (parallel slice to the items' origin:
/// `items_per_file[f]` are indices into `items` for `files[f]`).
pub fn build(files: &[SourceFile]) -> CallGraph {
    let mut items: Vec<FnItem> = Vec::new();
    let mut file_of_item: Vec<usize> = Vec::new();
    {
        let _span = axqa_obs::span("lint.parse");
        for (f, file) in files.iter().enumerate() {
            for item in crate::parse::parse_file(file) {
                items.push(item);
                file_of_item.push(f);
            }
        }
    }

    // Bare-name index for resolution.
    let mut by_name: Vec<(usize, &str)> = items
        .iter()
        .enumerate()
        .map(|(i, item)| (i, item.name.as_str()))
        .collect();
    by_name.sort_by(|a, b| a.1.cmp(b.1));

    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); items.len()];
    let mut sites: Vec<Vec<PanicSite>> = vec![Vec::new(); items.len()];

    for (idx, item) in items.iter().enumerate() {
        let Some((start, end)) = item.body else {
            continue;
        };
        let file = &files[file_of_item[idx]];
        scan_body(
            file,
            item,
            start,
            end,
            &items,
            &by_name,
            &mut calls[idx],
            &mut sites[idx],
        );
        calls[idx].sort_unstable();
        calls[idx].dedup();
    }

    CallGraph {
        items,
        calls,
        sites,
    }
}

/// All item indices named `name` (binary search over the sorted index).
fn named(by_name: &[(usize, &str)], name: &str) -> Vec<usize> {
    let lo = by_name.partition_point(|(_, n)| *n < name);
    let hi = by_name.partition_point(|(_, n)| *n <= name);
    by_name[lo..hi].iter().map(|(i, _)| *i).collect()
}

/// Scans one body for call sites and panic sites.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    file: &SourceFile,
    item: &FnItem,
    start: usize,
    end: usize,
    items: &[FnItem],
    by_name: &[(usize, &str)],
    calls: &mut Vec<usize>,
    sites: &mut Vec<PanicSite>,
) {
    let tokens = &file.tokens;
    for i in start..end.min(tokens.len()) {
        if file.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let token = &tokens[i];
        match token.kind {
            TokenKind::Ident => {}
            TokenKind::Punct if token.text(&file.text) == "[" => {
                // Indexing: `expr[i]` — the previous code token is an
                // identifier (not a keyword), `)` or `]`. Attributes
                // (`#[…]`), macro brackets (`vec![…]`), slice patterns
                // and array literals all have other predecessors.
                if let Some(p) = prev_code(tokens, i) {
                    if p >= start {
                        let prev = &tokens[p];
                        let prev_text = prev.text(&file.text);
                        let indexable = (prev.kind == TokenKind::Ident && !is_keyword(prev_text))
                            || prev_text == ")"
                            || prev_text == "]";
                        if indexable {
                            sites.push(PanicSite {
                                kind: PanicKind::Index,
                                line: token.line,
                            });
                        }
                    }
                }
                continue;
            }
            _ => continue,
        }
        let name = token.text(&file.text);

        // Macro panic sites: `name !` for the panic/assert families.
        if next_code(tokens, i).is_some_and(|n| tokens[n].text(&file.text) == "!") {
            if PANIC_MACROS.contains(&name) {
                sites.push(PanicSite {
                    kind: PanicKind::Macro,
                    line: token.line,
                });
            } else if ASSERT_MACROS.contains(&name) {
                sites.push(PanicSite {
                    kind: PanicKind::Assert,
                    line: token.line,
                });
            }
            continue;
        }

        // Everything else of interest is `name (` — a call.
        let called = next_code(tokens, i).is_some_and(|n| tokens[n].text(&file.text) == "(");
        if !called || is_keyword(name) {
            continue;
        }
        let dotted = prev_code(tokens, i).is_some_and(|p| tokens[p].text(&file.text) == ".");
        if dotted {
            match name {
                "unwrap" => {
                    sites.push(PanicSite {
                        kind: PanicKind::Unwrap,
                        line: token.line,
                    });
                }
                "expect" => {
                    sites.push(PanicSite {
                        kind: PanicKind::Expect,
                        line: token.line,
                    });
                }
                _ => {
                    // Method call: receiver type unknown — match every
                    // workspace fn with this name (conservative).
                    for target in named(by_name, name) {
                        if !items[target].is_test {
                            calls.push(target);
                        }
                    }
                }
            }
            continue;
        }
        // Skip `fn name(` — a nested fn definition, not a call.
        if prev_code(tokens, i).is_some_and(|p| tokens[p].text(&file.text) == "fn") {
            continue;
        }
        // Free or path call: walk the `A :: B :: name` qualifiers back.
        let mut quals: Vec<&str> = Vec::new();
        let mut back = i;
        while let Some(sep) = prev_code(tokens, back) {
            if tokens[sep].text(&file.text) != "::" {
                break;
            }
            let Some(q) = prev_code(tokens, sep) else {
                break;
            };
            let qt = tokens[q].text(&file.text);
            if tokens[q].kind != TokenKind::Ident {
                break; // turbofish `>::` — keep what we have
            }
            quals.push(qt);
            back = q;
        }
        quals.reverse();
        for target in resolve(item, &quals, name, items, by_name) {
            if !items[target].is_test {
                calls.push(target);
            }
        }
    }
}

/// Resolves a call with qualifier segments `quals` and bare name `name`
/// from inside `caller`. `Self` qualifiers map to the caller's impl
/// type; `crate`/`self`/`super` act as workspace-internal markers and
/// are dropped (the remaining segments filter by containment).
fn resolve(
    caller: &FnItem,
    quals: &[&str],
    name: &str,
    items: &[FnItem],
    by_name: &[(usize, &str)],
) -> Vec<usize> {
    let mut effective: Vec<String> = Vec::new();
    for q in quals {
        match *q {
            "crate" | "self" | "super" => {}
            "Self" => {
                if let Some(t) = &caller.self_type {
                    effective.push(t.clone());
                }
            }
            other => effective.push(other.to_string()),
        }
    }
    named(by_name, name)
        .into_iter()
        .filter(|&i| {
            let path = &items[i].path;
            // Every qualifier must appear among the item's path
            // segments (suffix-consistent, order not enforced — a
            // re-export like `axqa_core::ts_build` still matches
            // `axqa_core::build::ts_build`). A qualifier naming
            // something outside the workspace (std, vendored crates)
            // filters the candidate out.
            effective.iter().all(|q| {
                path.iter()
                    .take(path.len().saturating_sub(1))
                    .any(|s| s == q)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(sources: &[(&str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, text)| {
                SourceFile::new(
                    rel.to_string(),
                    "axqa-core".to_string(),
                    false,
                    text.to_string(),
                )
            })
            .collect();
        build(&files)
    }

    fn item_idx(g: &CallGraph, name: &str) -> usize {
        g.items.iter().position(|i| i.name == name).unwrap()
    }

    #[test]
    fn free_calls_resolve_across_files() {
        let g = graph(&[
            ("crates/core/src/a.rs", "pub fn caller() { helper(1); }\n"),
            (
                "crates/core/src/b.rs",
                "pub fn helper(x: u32) -> u32 { x }\n",
            ),
        ]);
        let caller = item_idx(&g, "caller");
        let helper = item_idx(&g, "helper");
        assert_eq!(g.calls[caller], vec![helper]);
    }

    #[test]
    fn path_qualifiers_filter_candidates() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "pub fn go() { b::run(); std::process::run(); }\n",
            ),
            ("crates/core/src/b.rs", "pub fn run() {}\n"),
            ("crates/core/src/c.rs", "pub fn run() {}\n"),
        ]);
        let go = item_idx(&g, "go");
        // `b::run` resolves to b.rs only; `std::process::run` to nothing.
        let b_run = g
            .items
            .iter()
            .position(|i| i.name == "run" && i.file.ends_with("b.rs"))
            .unwrap();
        assert_eq!(g.calls[go], vec![b_run]);
    }

    #[test]
    fn method_calls_are_conservative_and_self_resolves() {
        let src = "struct S;\nimpl S {\n  pub fn outer(&self) { self.inner(); Self::assoc(); }\n  \
                   fn inner(&self) {}\n  fn assoc() {}\n}\nstruct T;\nimpl T { fn inner(&self) {} }\n";
        let g = graph(&[("crates/core/src/a.rs", src)]);
        let outer = item_idx(&g, "outer");
        // `.inner()` matches both S::inner and T::inner (conservative);
        // `Self::assoc()` resolves through the impl type.
        let names: Vec<&str> = g.calls[outer]
            .iter()
            .map(|&i| g.items[i].name.as_str())
            .collect();
        assert_eq!(names.len(), 3, "{names:?}");
        assert_eq!(names.iter().filter(|n| **n == "inner").count(), 2);
        assert!(names.contains(&"assoc"));
    }

    #[test]
    fn panic_sites_are_classified() {
        let src = "pub fn f(v: &[u32], o: Option<u32>) -> u32 {\n\
                   assert!(!v.is_empty());\n\
                   if v.len() > 3 { panic!(\"too long\"); }\n\
                   let x = v[0];\n\
                   x + o.unwrap() + o.expect(\"set\")\n}\n";
        let g = graph(&[("crates/core/src/a.rs", src)]);
        let kinds: Vec<PanicKind> = g.sites[0].iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Assert,
                PanicKind::Macro,
                PanicKind::Index,
                PanicKind::Unwrap,
                PanicKind::Expect
            ]
        );
    }

    #[test]
    fn non_panicking_lookalikes_are_ignored() {
        let src = "pub fn f(o: Option<u32>) -> u32 {\n\
                   let v = vec![1, 2];\n\
                   #[allow(dead_code)]\n\
                   let arr = [0u8; 4];\n\
                   let [a, b] = [1, 2];\n\
                   debug_assert!(a <= b);\n\
                   o.unwrap_or(v.len() as u32)\n}\n";
        let g = graph(&[("crates/core/src/a.rs", src)]);
        assert!(g.sites[0].is_empty(), "{:?}", g.sites[0]);
    }

    #[test]
    fn test_code_contributes_no_sites_or_edges() {
        let src = "pub fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { live(); Some(1).unwrap(); }\n}\n";
        let g = graph(&[("crates/core/src/a.rs", src)]);
        let t = item_idx(&g, "t");
        assert!(g.items[t].is_test);
        assert!(g.sites[t].is_empty());
    }

    #[test]
    fn indexing_after_call_or_index_counts() {
        let src = "pub fn f(m: &M) -> u32 { m.rows()[0][1] }\n";
        let g = graph(&[("crates/core/src/a.rs", src)]);
        let idx_sites = g.sites[0]
            .iter()
            .filter(|s| s.kind == PanicKind::Index)
            .count();
        assert_eq!(idx_sites, 2);
    }
}
