//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since 1.63). Semantics differ from
//! real crossbeam in one way: a panicking worker propagates at the
//! end of the scope instead of surfacing as `Err`, so the `Result`
//! returned here is always `Ok`. The workspace only calls
//! `.expect(..)`/`?` on the result, which behaves identically on the
//! success path.

pub mod thread_scope {
    use std::thread;

    /// Mirror of `crossbeam::thread::Scope`: hands itself to spawned
    /// closures so workers can spawn further workers.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread_scope::scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_workers_share_stack_data() {
        let counter = AtomicUsize::new(0);
        let result = crate::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
