// Integration tests opt back into panicking extractors.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! ISSUE satellite: malformed input must surface as a typed
//! [`AxqaError`], never a panic — malformed XML, an empty synopsis, and
//! a zero-count division in selectivity estimation each map to their own
//! variant.

use axqa_core::error::AxqaError;
use axqa_core::values::ValueSummary;
use axqa_core::{try_estimate_query_selectivity, try_ts_build, BuildConfig, EvalConfig};
use axqa_query::{parse_twig, ValueOp, ValuePred};
use axqa_synopsis::build_stable;
use axqa_xml::parse_document;

#[test]
fn malformed_xml_is_a_typed_error() {
    for bad in ["<a>", "<a></b>", "", "</a>", "<a/><b/>"] {
        let err: AxqaError = parse_document(bad).unwrap_err().into();
        assert!(
            matches!(err, AxqaError::Xml(_)),
            "{bad:?} should map to AxqaError::Xml, got {err}"
        );
        assert!(err.to_string().starts_with("malformed XML"));
    }
}

#[test]
fn empty_synopsis_is_a_typed_error() {
    // A structurally valid serialization describing zero nodes.
    let err = axqa_core::io::load_sketch("treesketch v1\nnodes 0 root 0 sq 0.0\n").unwrap_err();
    assert!(matches!(err, AxqaError::EmptySynopsis { .. }), "got {err}");

    // Garbage is an IO error, not an empty-synopsis error.
    let err = axqa_core::io::load_sketch("garbage").unwrap_err();
    assert!(matches!(err, AxqaError::SketchIo(_)), "got {err}");
}

#[test]
fn non_empty_inputs_pass_the_fallible_apis() {
    let doc = parse_document("<r><a><b/></a><a><b/><b/></a></r>").unwrap();
    let stable = build_stable(&doc);
    let report = try_ts_build(&stable, &BuildConfig::with_budget(4096)).unwrap();
    let query = parse_twig("q1: q0 //a\nq2: q1 /b").unwrap();
    let estimate =
        try_estimate_query_selectivity(&report.sketch, &query, &EvalConfig::default()).unwrap();
    assert!((estimate - 3.0).abs() < 1e-9);
}

#[test]
fn zero_count_division_in_value_selectivity_is_a_typed_error() {
    // A cluster claiming values but zero elements: the value fraction
    // `with_value / total` would divide by a zero count.
    let summary = ValueSummary {
        sample: vec![1.0, 2.0],
        with_value: 2,
        total: 0,
        exact: true,
    };
    let pred = ValuePred {
        op: ValueOp::Gt,
        constant: 0.0,
    };
    let err = summary.try_selectivity(&[pred]).unwrap_err();
    assert!(
        matches!(err, AxqaError::ZeroCountDivision { .. }),
        "got {err}"
    );
    assert!(err.to_string().contains("zero element count"));

    // No predicates → nothing to divide; trivially selectivity 1.
    let ok = summary.try_selectivity(&[]).unwrap();
    assert!((ok - 1.0).abs() < 1e-12);
}
