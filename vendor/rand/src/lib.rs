//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the (small) subset of the rand 0.8 API that the
//! workspace actually uses: the `Rng` / `RngCore` / `SeedableRng`
//! traits, `rngs::StdRng`, `gen_range` over integer and float ranges,
//! `gen_bool`, and `gen::<f64>()`. The generator is xoshiro256++
//! seeded with SplitMix64, so all seeded experiments stay
//! deterministic across runs. It is NOT a cryptographic RNG and makes
//! no distribution-quality claims beyond "good enough for synthetic
//! data generation and sampling in tests/benchmarks".

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

/// Seedable construction (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, identical strategy to rand_core.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that a `Range`/`RangeInclusive` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high, "empty sample range");
                let span = (high as i128) - (low as i128) + 1;
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                ((low as i128) + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) as f64);
                low + (high - low) * unit as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: One> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper so half-open integer ranges can be mapped onto the
/// inclusive sampler without overflowing at the type's maximum.
pub trait One: SampleUniform {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, end: Self) -> Self;
}

macro_rules! impl_one_int {
    ($($t:ty),* $(,)?) => {$(
        impl One for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, end: Self) -> Self {
                debug_assert!(low < end, "empty sample range");
                Self::sample_inclusive(rng, low, end - 1)
            }
        }
    )*};
}

impl_one_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_one_float {
    ($($t:ty),* $(,)?) => {$(
        impl One for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, end: Self) -> Self {
                // Floats: the half-open/closed distinction is immaterial
                // for this stub's callers.
                Self::sample_inclusive(rng, low, end)
            }
        }
    )*};
}

impl_one_float!(f32, f64);

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::standard(rng) as f32
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// High-level convenience methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng`. Same trait surface, different (but stable) streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
