// Count-carrying crate (ISSUE 1; DESIGN.md "Static analysis & invariants"):
// lossy casts and unchecked arithmetic on element/edge counts are denied
// outside tests, on top of the workspace lint table.
#![cfg_attr(
    not(test),
    deny(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::arithmetic_side_effects
    )
)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

//! # axqa-distance — error metrics for approximate XML answers (§5)
//!
//! §5 argues that syntax-oriented metrics such as tree-edit distance
//! cannot judge approximate answers: an answer is good if it preserves
//! the *statistical traits* of the true result. The paper introduces the
//! **Element Simulation Distance (ESD)**: two elements are close if, for
//! every tag, their child sets (treated as value sets with recursively
//! computed pairwise distances) are close under a value-set distance
//! such as MAC or EMD.
//!
//! This crate implements:
//!
//! * [`WeightedSummary`] — the common representation ESD is computed
//!   over: a DAG of nodes with (possibly fractional) child
//!   multiplicities, built from documents, exact nesting trees, or
//!   approximate result sketches. This realizes the paper's "compute ESD
//!   on stable summaries" optimization.
//! * [`setdist`] — the pluggable value-set distance: a MAC-style greedy
//!   matching with a superlinear multiplicity-mismatch penalty (the
//!   paper notes MAC "assigns a heavy penalty if the compared element
//!   sets contain the same sub-tree in different multiplicities"), and
//!   an exact EMD via min-cost flow.
//! * [`esd`] — the ESD recursion with memoization over summary-node
//!   pairs, optionally restricted to children bound to the same query
//!   variable (the paper's "straightforward extension" used in §6).
//! * [`tree_edit`] — Zhang–Shasha ordered tree-edit distance with
//!   configurable operation costs, used to reproduce the Figure 10
//!   argument that edit distance ranks `T1` and `T2` equally while ESD
//!   prefers `T2`.

pub mod esd;
pub mod setdist;
pub mod tree_edit;
pub mod weighted;

pub use esd::{
    esd_answer, esd_answer_tree, esd_documents, esd_empty_answer, esd_summaries, EsdConfig,
};
pub use setdist::SetDistance;
pub use tree_edit::{tree_edit_distance, EditCosts};
pub use weighted::WeightedSummary;
