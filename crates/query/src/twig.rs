//! Twig query trees (the paper's `T_Q`, §2, Figure 2(b)).
//!
//! A [`TwigQuery`] is a rooted tree of query variables. Variable `q0` is
//! implicit and always bound to the document root; every other variable
//! `qi` has a parent variable and the path expression annotating the edge
//! from its parent. Edges may be *optional* (the dashed edges of the
//! generalized-tree-pattern notation): an optional edge with no matches
//! does not nullify bindings of its parent.

use crate::path::PathExpr;
use std::fmt;

/// A query variable. `QVar(0)` is the distinguished root `q0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QVar(pub u32);

impl QVar {
    /// The root variable `q0`.
    pub const ROOT: QVar = QVar(0);

    /// The variable as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// One non-root node of the query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryNode {
    /// Parent variable.
    pub parent: QVar,
    /// Path expression annotating the edge from `parent`.
    pub path: PathExpr,
    /// Whether the edge is dashed (return-clause path that may be empty).
    pub optional: bool,
}

/// A twig query: the query tree `T_Q`.
///
/// Internally node `i` of `nodes` is variable `q(i+1)`; `q0` is implicit.
/// Variables are numbered in insertion order, which the constructor keeps
/// topological (a parent must exist before its children), so iterating
/// variables in numeric order is a pre-order-compatible traversal — the
/// order `EVALQUERY` (§4.3) processes them in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TwigQuery {
    nodes: Vec<QueryNode>,
}

impl TwigQuery {
    /// Creates a query containing only the implicit root `q0`.
    pub fn new() -> TwigQuery {
        TwigQuery::default()
    }

    /// Adds a variable under `parent` reached via `path`; returns it.
    ///
    /// # Panics
    /// Panics if `parent` does not exist yet.
    pub fn add(&mut self, parent: QVar, path: PathExpr) -> QVar {
        self.add_edge(parent, path, false)
    }

    /// Adds an *optional* (dashed) variable under `parent`.
    ///
    /// # Panics
    /// Panics if `parent` does not exist yet.
    pub fn add_optional(&mut self, parent: QVar, path: PathExpr) -> QVar {
        self.add_edge(parent, path, true)
    }

    fn add_edge(&mut self, parent: QVar, path: PathExpr, optional: bool) -> QVar {
        assert!(
            parent.index() <= self.nodes.len(),
            "parent {parent} does not exist"
        );
        self.nodes.push(QueryNode {
            parent,
            path,
            optional,
        });
        // Query trees are tiny (≤ dozens of variables); saturation is
        // unreachable in practice but keeps the cast lossless.
        QVar(u32::try_from(self.nodes.len()).unwrap_or(u32::MAX))
    }

    /// Number of variables including `q0`.
    pub fn num_vars(&self) -> usize {
        self.nodes.len() + 1
    }

    /// Whether the query is just `q0` (matches only the document root).
    pub fn is_trivial(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The [`QueryNode`] of a non-root variable.
    ///
    /// # Panics
    /// Panics on `q0` or an unknown variable.
    pub fn node(&self, var: QVar) -> &QueryNode {
        assert!(var != QVar::ROOT, "q0 has no incoming edge");
        &self.nodes[var.index() - 1]
    }

    /// Parent of a non-root variable.
    pub fn parent(&self, var: QVar) -> QVar {
        self.node(var).parent
    }

    /// All variables in numeric (pre-order-compatible) order, `q0` first.
    pub fn vars(&self) -> impl Iterator<Item = QVar> {
        (0..u32::try_from(self.num_vars()).unwrap_or(u32::MAX)).map(QVar)
    }

    /// Children of `var` in numeric order.
    pub fn children(&self, var: QVar) -> impl Iterator<Item = QVar> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.parent == var)
            .map(|(i, _)| QVar(u32::try_from(i + 1).unwrap_or(u32::MAX)))
    }

    /// Whether `var` has children.
    pub fn has_children(&self, var: QVar) -> bool {
        self.children(var).next().is_some()
    }

    /// Total number of path steps across all edges (a size measure used
    /// by workload statistics).
    pub fn total_steps(&self) -> usize {
        self.nodes.iter().map(|n| n.path.total_steps()).sum()
    }

    /// Whether `var` must be non-empty for the query to have a result:
    /// true iff `var` and every ancestor edge up to the root is
    /// required. A required edge *below* an optional one only constrains
    /// bindings inside the optional part.
    pub fn effectively_required(&self, var: QVar) -> bool {
        let mut current = var;
        while current != QVar::ROOT {
            let node = self.node(current);
            if node.optional {
                return false;
            }
            current = node.parent;
        }
        true
    }

    /// Variables in post-order (children before parents).
    pub fn post_order(&self) -> Vec<QVar> {
        let mut out = Vec::with_capacity(self.num_vars());
        self.post_order_into(QVar::ROOT, &mut out);
        out
    }

    fn post_order_into(&self, var: QVar, out: &mut Vec<QVar>) {
        for child in self.children(var) {
            self.post_order_into(child, out);
        }
        out.push(var);
    }
}

impl fmt::Display for TwigQuery {
    /// The compact textual form accepted by [`crate::parse_twig`]:
    /// one `qJ: qI [?] path` line per non-root variable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, node) in self.nodes.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            let opt = if node.optional { "? " } else { "" };
            write!(f, "q{}: {} {}{}", i + 1, node.parent, opt, node.path)?;
        }
        Ok(())
    }
}

/// Builds the example query of the paper's Figure 2(b):
///
/// ```text
/// q1: q0 //a[//b]
/// q2: q1 //p
/// q3: q2 ? //k
/// q4: q1 ? //n
/// ```
pub fn figure2_query() -> TwigQuery {
    let mut q = TwigQuery::new();
    let q1 = q.add(
        QVar::ROOT,
        PathExpr::descendant("a").with_predicate(PathExpr::descendant("b")),
    );
    let q2 = q.add(q1, PathExpr::descendant("p"));
    let _q3 = q.add_optional(q2, PathExpr::descendant("k"));
    let _q4 = q.add_optional(q1, PathExpr::descendant("n"));
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Axis;

    #[test]
    fn figure2_structure() {
        let q = figure2_query();
        assert_eq!(q.num_vars(), 5);
        let q1 = QVar(1);
        let q2 = QVar(2);
        let q3 = QVar(3);
        let q4 = QVar(4);
        assert_eq!(q.parent(q1), QVar::ROOT);
        assert_eq!(q.parent(q2), q1);
        assert_eq!(q.parent(q3), q2);
        assert_eq!(q.parent(q4), q1);
        assert!(q.node(q3).optional);
        assert!(q.node(q4).optional);
        assert!(!q.node(q1).optional);
        assert_eq!(q.node(q1).path.to_string(), "//a[//b]");
        let q1_children: Vec<_> = q.children(q1).collect();
        assert_eq!(q1_children, vec![q2, q4]);
    }

    #[test]
    fn display_format() {
        let q = figure2_query();
        let text = q.to_string();
        assert_eq!(
            text,
            "q1: q0 //a[//b]\nq2: q1 //p\nq3: q2 ? //k\nq4: q1 ? //n"
        );
    }

    #[test]
    fn post_order_ends_at_root() {
        let q = figure2_query();
        let order = q.post_order();
        assert_eq!(order.len(), 5);
        assert_eq!(*order.last().unwrap(), QVar::ROOT);
        // q3 before q2 before q1; q4 before q1.
        let pos = |v: QVar| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(QVar(3)) < pos(QVar(2)));
        assert!(pos(QVar(2)) < pos(QVar(1)));
        assert!(pos(QVar(4)) < pos(QVar(1)));
    }

    #[test]
    fn total_steps() {
        let mut q = TwigQuery::new();
        let q1 = q.add(QVar::ROOT, PathExpr::descendant("a").then(Axis::Child, "b"));
        q.add(
            q1,
            PathExpr::child("c").with_predicate(PathExpr::child("d")),
        );
        assert_eq!(q.total_steps(), 4);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn unknown_parent_panics() {
        let mut q = TwigQuery::new();
        q.add(QVar(7), PathExpr::child("x"));
    }

    #[test]
    #[should_panic(expected = "q0 has no incoming edge")]
    fn root_has_no_node() {
        let q = figure2_query();
        let _ = q.node(QVar::ROOT);
    }
}
