//! Shared experiment pipeline: dataset → stable summary → workload →
//! exact ground truth, with parallel exact evaluation.

use axqa_datagen::workload::{positive_workload, WorkloadConfig};
use axqa_datagen::{generate, Dataset, GenConfig};
use axqa_eval::{evaluate, DocIndex, NestingTree};
use axqa_query::TwigQuery;
use axqa_synopsis::{build_stable, StableSummary};
use axqa_xml::Document;
use parking_lot::Mutex;

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Multiplier on the dataset's paper element count.
    pub scale: f64,
    /// Workload size (the paper uses 1000).
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for exact evaluation (0 = available parallelism).
    pub threads: usize,
    /// Materialize exact nesting trees (needed for ESD experiments);
    /// selectivity-only experiments can skip them and use the direct
    /// tuple counter.
    pub need_nesting: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            scale: 0.25,
            queries: 200,
            seed: 0x5EED,
            threads: 0,
            need_nesting: true,
        }
    }
}

impl PipelineConfig {
    /// Worker-thread count to use.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        }
    }
}

/// A dataset prepared for experiments.
pub struct Prepared {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// Whether the large-scale element target was used.
    pub large: bool,
    /// The document.
    pub doc: Document,
    /// Its count-stable summary.
    pub stable: StableSummary,
    /// Evaluation index.
    pub index: DocIndex,
    /// Positive twig workload.
    pub workload: Vec<TwigQuery>,
    /// Exact nesting trees; `None` per query when `need_nesting` was
    /// off (selectivity-only pipelines).
    pub nesting: Vec<Option<NestingTree>>,
    /// Exact binding-tuple counts.
    pub exact: Vec<f64>,
}

impl Prepared {
    /// Generates and fully prepares a dataset at TX (`large = false`) or
    /// large (`large = true`) scale.
    pub fn new(dataset: Dataset, large: bool, config: &PipelineConfig) -> Prepared {
        let base = if large {
            dataset.large_elements()
        } else {
            // DBLP has no TX row; fall back to its large count.
            let tx = dataset.tx_elements();
            if tx == 0 {
                dataset.large_elements()
            } else {
                tx
            }
        };
        let target = usize::try_from(axqa_xml::f64_to_u64(
            ((base as f64) * config.scale).max(2_000.0),
        ))
        .unwrap_or(usize::MAX);
        let doc = generate(
            dataset,
            &GenConfig {
                target_elements: target,
                seed: config.seed,
            },
        );
        let stable = build_stable(&doc);
        let index = DocIndex::build(&doc);
        let workload = positive_workload(
            &stable,
            &WorkloadConfig {
                count: config.queries,
                seed: config.seed ^ 0xA11CE,
                ..WorkloadConfig::default()
            },
        );
        let (nesting, exact) = exact_ground_truth(&doc, &index, &workload, config);
        Prepared {
            dataset,
            large,
            doc,
            stable,
            index,
            workload,
            nesting,
            exact,
        }
    }

    /// The paper's sanity bound `s`: the 10-percentile of true counts.
    pub fn sanity_bound(&self) -> f64 {
        let mut counts = self.exact.clone();
        counts.sort_by(f64::total_cmp);
        if counts.is_empty() {
            1.0
        } else {
            counts[counts.len() / 10].max(1.0)
        }
    }

    /// Average binding tuples per workload query (Table 2).
    pub fn avg_binding_tuples(&self) -> f64 {
        if self.exact.is_empty() {
            0.0
        } else {
            self.exact.iter().sum::<f64>() / self.exact.len() as f64
        }
    }
}

/// Index-parallel map: evaluates `f(0), …, f(n-1)` on `threads` scoped
/// workers (work-stealing via an atomic cursor) and returns the results
/// in index order. `threads <= 1` or `n <= 1` runs inline. This is the
/// one fan-out primitive of the harness — exact ground truth, the
/// per-budget/per-query experiment loops, and the bench baseline all go
/// through it.
pub fn parallel_map_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_indexed_with(threads, n, || (), |_, i| f(i))
}

/// [`parallel_map_indexed`] with per-worker scratch state: `init` builds
/// one `S` per worker (one total on the inline path) and `f` receives it
/// mutably alongside the index. This is how the query-serving loops
/// reuse an `EvalScratch` across calls without sharing it between
/// threads.
///
/// # Panics
///
/// If any worker closure panics, the panic is re-raised on the calling
/// thread once the scope joins.
pub fn parallel_map_indexed_with<S, T, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Utilization telemetry (DESIGN.md §12): region wall time vs summed
    // per-worker busy time, same counters as the CREATEPOOL lanes.
    let region = axqa_obs::Stopwatch::start();
    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let busy = axqa_obs::Stopwatch::start();
                let mut state = init();
                let mut items = 0u64;
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(&mut state, i);
                    results.lock()[i] = Some(value);
                    items = items.saturating_add(1);
                }
                axqa_obs::counter("parallel.busy_us", busy.elapsed_us());
                axqa_obs::observe("parallel.worker_items", items);
                // Tail events land after the last span's eager flush;
                // push them out before the scope joins past us.
                axqa_obs::flush();
            });
        }
    });
    if scope_result.is_err() {
        panic!("parallel map worker panicked");
    }
    let wall_us = region.elapsed_us();
    axqa_obs::counter("parallel.regions", 1);
    axqa_obs::counter("parallel.wall_us", wall_us);
    axqa_obs::counter(
        "parallel.capacity_us",
        wall_us.saturating_mul(threads as u64),
    );
    results
        .into_inner()
        .into_iter()
        .map(|slot| match slot {
            Some(value) => value,
            None => unreachable!("every index computed"),
        })
        .collect()
}

/// Evaluates the workload exactly, in parallel.
fn exact_ground_truth(
    doc: &Document,
    index: &DocIndex,
    workload: &[TwigQuery],
    config: &PipelineConfig,
) -> (Vec<Option<NestingTree>>, Vec<f64>) {
    let threads = config.effective_threads().max(1);
    let results = parallel_map_indexed(threads, workload.len(), |i| {
        if config.need_nesting {
            let nt = evaluate(doc, index, &workload[i]);
            let count = nt
                .as_ref()
                .map_or(0.0, |tree| tree.binding_tuples(&workload[i]));
            (nt, count)
        } else {
            (
                None,
                axqa_eval::count_binding_tuples(doc, index, &workload[i]),
            )
        }
    });
    let mut nesting = Vec::with_capacity(workload.len());
    let mut exact = Vec::with_capacity(workload.len());
    for (nt, count) in results {
        nesting.push(nt);
        exact.push(count);
    }
    (nesting, exact)
}

/// The paper-literal relative error `|r − e| / max(e, s)` (§6.1).
pub fn relative_error(true_count: f64, estimate: f64, sanity: f64) -> f64 {
    (true_count - estimate).abs() / estimate.max(sanity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_small_dataset() {
        let config = PipelineConfig {
            scale: 0.05,
            queries: 20,
            seed: 9,
            threads: 2,
            need_nesting: true,
        };
        let p = Prepared::new(Dataset::Imdb, false, &config);
        assert_eq!(p.workload.len(), 20);
        assert_eq!(p.exact.len(), 20);
        assert!(p.exact.iter().all(|&c| c > 0.0), "positive workload");
        assert!(p.avg_binding_tuples() > 0.0);
        assert!(p.sanity_bound() >= 1.0);
    }

    #[test]
    fn relative_error_uses_paper_formula() {
        assert_eq!(relative_error(10.0, 5.0, 1.0), 1.0);
        assert_eq!(relative_error(10.0, 0.0, 2.0), 5.0);
        assert_eq!(relative_error(4.0, 4.0, 1.0), 0.0);
    }

    #[test]
    fn parallel_map_matches_serial_and_preserves_order() {
        let serial: Vec<usize> = parallel_map_indexed(1, 100, |i| i * i);
        let parallel: Vec<usize> = parallel_map_indexed(4, 100, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
        let empty: Vec<usize> = parallel_map_indexed(4, 0, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn parallel_map_with_state_matches_stateless() {
        // Worker-local scratch must not change results or their order.
        let stateless: Vec<usize> = parallel_map_indexed(4, 64, |i| i * 3);
        let stateful: Vec<usize> =
            parallel_map_indexed_with(4, 64, Vec::<usize>::new, |scratch, i| {
                scratch.push(i); // scratch persists across a worker's items
                i * 3
            });
        assert_eq!(stateless, stateful);
        let inline: Vec<usize> = parallel_map_indexed_with(
            1,
            8,
            || 0usize,
            |acc, i| {
                *acc += i;
                *acc
            },
        );
        assert_eq!(inline, vec![0, 1, 3, 6, 10, 15, 21, 28]);
    }
}
