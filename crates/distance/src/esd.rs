//! The Element Simulation Distance (§5).
//!
//! `ESD(u, v)` between two same-label elements is the sum, over child
//! tags `t`, of the value-set distance between the weighted child groups
//! `U_t` and `V_t`, where the distance between individual children is
//! ESD applied recursively. When one group is empty, the paper's
//! transformation (insert artificial elements at distance `|e|`) makes
//! the distance the summed subtree-size penalty of the other group.
//!
//! The computation runs over [`WeightedSummary`] DAGs with memoization
//! on node pairs — the "compute ESD on the stable summaries" efficiency
//! trick of §5. For experiment workloads, child groups are keyed by
//! `(tag, query variable)` rather than tag alone — the paper's
//! "straightforward extension of ESD that limits comparisons to the
//! binding elements of the same query variable" (§6.1).

use crate::setdist::{SetDistance, SetItem};
use crate::weighted::WeightedSummary;
use axqa_core::eval::ResultSketch;
use axqa_eval::NestingTree;
use axqa_xml::fxhash::FxHashMap;
use axqa_xml::Document;

/// ESD configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EsdConfig {
    /// The value-set distance used between child groups.
    pub set_distance: SetDistance,
}

/// ESD between two plain documents.
///
/// ```
/// use axqa_xml::parse_document;
/// use axqa_distance::{esd_documents, EsdConfig};
///
/// let a = parse_document("<r><x/><x/></r>").unwrap();
/// let b = parse_document("<r><x/></r>").unwrap();
/// let config = EsdConfig::default();
/// assert_eq!(esd_documents(&a, &a, &config), 0.0);
/// assert!(esd_documents(&a, &b, &config) > 0.0);
/// ```
pub fn esd_documents(d1: &Document, d2: &Document, config: &EsdConfig) -> f64 {
    let s1 = WeightedSummary::from_document(d1);
    let s2 = WeightedSummary::from_document(d2);
    esd_summaries(&s1, &s2, config)
}

/// ESD between the true nesting tree of a query and an approximate
/// result sketch — the §6 quality measure for approximate answers.
pub fn esd_answer(
    doc: &Document,
    truth: &NestingTree,
    approx: &ResultSketch,
    config: &EsdConfig,
) -> f64 {
    let s1 = WeightedSummary::from_nesting_tree(doc, truth);
    let s2 = WeightedSummary::from_result_sketch(approx);
    esd_summaries(&s1, &s2, config)
}

/// ESD between the true nesting tree and a concrete (e.g. sampled)
/// answer tree — used for the twig-XSketch baseline of §6.1.
pub fn esd_answer_tree(
    doc: &Document,
    truth: &NestingTree,
    approx: &axqa_eval::AnswerTree,
    config: &EsdConfig,
) -> f64 {
    let s1 = WeightedSummary::from_nesting_tree(doc, truth);
    let s2 = WeightedSummary::from_answer_tree(approx);
    esd_summaries(&s1, &s2, config)
}

/// ESD charged when the approximate answer is empty but the true one is
/// not (or vice versa): the whole true result is "missing mass".
pub fn esd_empty_answer(doc: &Document, truth: &NestingTree, config: &EsdConfig) -> f64 {
    let s = WeightedSummary::from_nesting_tree(doc, truth);
    let root = s.node(s.root());
    // Distance between the root and an empty counterpart with the same
    // label: all child groups unmatched.
    let exponent = match config.set_distance {
        SetDistance::GreedyMac { exponent } | SetDistance::Emd { exponent } => exponent,
    };
    root.edges
        .iter()
        .map(|&(t, m)| m.powf(exponent).max(m) * s.node(t).size)
        .sum()
}

/// ESD between two weighted summaries.
///
/// Roots with different labels are maximally distant: the sum of both
/// total sizes (delete one tree, insert the other).
pub fn esd_summaries(s1: &WeightedSummary, s2: &WeightedSummary, config: &EsdConfig) -> f64 {
    // Label vocabularies may differ (summaries from different pipelines);
    // translate s2's label ids into s1's by name once.
    let translate: Vec<Option<u32>> = s2
        .labels()
        .iter()
        .map(|(_, name)| s1.labels().get(name).map(|l| l.0))
        .collect();
    let mut engine = Engine {
        s1,
        s2,
        translate,
        config: *config,
        memo: FxHashMap::default(),
    };
    let r1 = s1.root();
    let r2 = s2.root();
    if !engine.comparable(r1, r2) {
        return s1.total_size() + s2.total_size();
    }
    engine.esd(r1, r2)
}

struct Engine<'a> {
    s1: &'a WeightedSummary,
    s2: &'a WeightedSummary,
    /// s2 label id → s1 label id (by name).
    translate: Vec<Option<u32>>,
    config: EsdConfig,
    memo: FxHashMap<(u32, u32), f64>,
}

impl Engine<'_> {
    /// Same (translated) label and same query-variable tag.
    fn comparable(&self, u: u32, v: u32) -> bool {
        let nu = self.s1.node(u);
        let nv = self.s2.node(v);
        self.translate[nv.label.index()] == Some(nu.label.0) && nu.var == nv.var
    }

    /// Group key of a child in s1's vocabulary: (label, var).
    fn key1(&self, u: u32) -> (u32, u32) {
        let n = self.s1.node(u);
        (n.label.0, n.var.map_or(u32::MAX, |q| q.0))
    }

    fn key2(&self, v: u32) -> Option<(u32, u32)> {
        let n = self.s2.node(v);
        let label = self.translate[n.label.index()]?;
        Some((label, n.var.map_or(u32::MAX, |q| q.0)))
    }

    fn esd(&mut self, u: u32, v: u32) -> f64 {
        if let Some(&cached) = self.memo.get(&(u, v)) {
            return cached;
        }
        // Group children of u and v by (label, var).
        // (child id, multiplicity) lists per side of one group.
        type Group = (Vec<(u32, f64)>, Vec<(u32, f64)>);
        let mut groups: FxHashMap<(u32, u32), Group> = FxHashMap::default();
        for &(c, m) in &self.s1.node(u).edges {
            groups.entry(self.key1(c)).or_default().0.push((c, m));
        }
        for &(c, m) in &self.s2.node(v).edges {
            match self.key2(c) {
                Some(key) => groups.entry(key).or_default().1.push((c, m)),
                None => {
                    // Label unknown on the other side: wholly unmatched.
                    groups.entry((u32::MAX, c)).or_default().1.push((c, m));
                }
            }
        }
        let mut total = 0.0;
        // Sorted so the float accumulation below is independent of the
        // map's iteration order.
        let mut keys: Vec<(u32, u32)> = groups.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let (left, right) = groups.get(&key).cloned().unwrap_or_default();
            let items_l: Vec<SetItem> = left
                .iter()
                .map(|&(c, m)| SetItem {
                    size: self.s1.node(c).size,
                    mult: m,
                })
                .collect();
            let items_r: Vec<SetItem> = right
                .iter()
                .map(|&(c, m)| SetItem {
                    size: self.s2.node(c).size,
                    mult: m,
                })
                .collect();
            // Pairwise recursive distances.
            let mut dist = Vec::with_capacity(items_l.len() * items_r.len());
            for &(cl, _) in &left {
                for &(cr, _) in &right {
                    dist.push(self.esd(cl, cr));
                }
            }
            total += self.config.set_distance.eval(&items_l, &items_r, &dist);
        }
        self.memo.insert((u, v), total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_xml::parse_document;

    /// Figure 10's trees with |Sc| = |Sd| = 1 (single nodes).
    fn fig10_t() -> Document {
        parse_document("<r><a><c/><c/><c/><c/><d/></a><a><c/><d/><d/><d/><d/></a></r>").unwrap()
    }
    fn fig10_t1() -> Document {
        parse_document("<r><a><c/><d/></a><a><c/><c/><c/><c/><d/><d/><d/><d/></a></r>").unwrap()
    }
    fn fig10_t2() -> Document {
        parse_document(
            "<r><a><c/><c/><c/><c/><c/><c/><d/><d/></a>\
             <a><c/><c/><d/><d/><d/><d/><d/><d/></a></r>",
        )
        .unwrap()
    }

    #[test]
    fn esd_of_identical_documents_is_zero() {
        let config = EsdConfig::default();
        for doc in [fig10_t(), fig10_t1(), fig10_t2()] {
            assert_eq!(esd_documents(&doc, &doc, &config), 0.0);
        }
    }

    #[test]
    fn esd_is_symmetric() {
        let config = EsdConfig::default();
        let (t, t1) = (fig10_t(), fig10_t1());
        let ab = esd_documents(&t, &t1, &config);
        let ba = esd_documents(&t1, &t, &config);
        assert!((ab - ba).abs() < 1e-9);
        assert!(ab > 0.0);
    }

    #[test]
    fn figure10_esd_prefers_correlation_preserving_t2() {
        // §5's argument: tree-edit distance ranks T1 and T2 equally, but
        // T2 preserves the c/d anti-correlation and should be closer.
        let config = EsdConfig::default();
        let t = fig10_t();
        let d1 = esd_documents(&t, &fig10_t1(), &config);
        let d2 = esd_documents(&t, &fig10_t2(), &config);
        assert!(
            d2 < d1,
            "ESD must prefer T2: esd(T,T1) = {d1}, esd(T,T2) = {d2}"
        );
    }

    #[test]
    fn figure10_holds_under_emd_too() {
        let config = EsdConfig {
            set_distance: SetDistance::Emd { exponent: 2.0 },
        };
        let t = fig10_t();
        let d1 = esd_documents(&t, &fig10_t1(), &config);
        let d2 = esd_documents(&t, &fig10_t2(), &config);
        assert!(d2 < d1, "esd(T,T1) = {d1}, esd(T,T2) = {d2}");
    }

    #[test]
    fn different_roots_are_maximally_distant() {
        let config = EsdConfig::default();
        let a = parse_document("<a><x/></a>").unwrap();
        let b = parse_document("<b><x/></b>").unwrap();
        assert_eq!(esd_documents(&a, &b, &config), 4.0); // 2 + 2
    }

    #[test]
    fn missing_subtrees_cost_their_size() {
        let config = EsdConfig::default();
        let full = parse_document("<r><a><b/><b/></a></r>").unwrap();
        let bare = parse_document("<r><a/></r>").unwrap();
        // a-group matches (ESD(a_full, a_bare) = 2²·1 = 4 for the two
        // missing b's); top-level group distance = 1·4 = 4.
        let d = esd_documents(&full, &bare, &config);
        assert_eq!(d, 4.0);
    }

    #[test]
    fn disjoint_vocabulary_children_counted() {
        let config = EsdConfig::default();
        let a = parse_document("<r><x/></r>").unwrap();
        let b = parse_document("<r><y/></r>").unwrap();
        // x unmatched (1) + y unmatched (1).
        assert_eq!(esd_documents(&a, &b, &config), 2.0);
    }
}
