// Tests opt back into panicking extractors; library code returns errors
// (workspace lint table, DESIGN.md "Static analysis & invariants").
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

//! # axqa-query — twig queries over node-labeled XML trees
//!
//! The paper (§2) models a twig query `Q` as a node-labeled *query tree*
//! `T_Q`: nodes are query variables `q0, q1, …` (with `q0` bound to the
//! document root), and every edge `(qi, qj)` carries an XPath expression
//! `path(qi, qj)` built from the child (`/`) and descendant-or-self (`//`)
//! axes plus existential branching predicates `[l̄]`. Dashed edges (the
//! generalized-tree-pattern notation of Chen et al.) mark paths from the
//! return clause that may be empty without nullifying the query.
//!
//! This crate provides the AST ([`PathExpr`], [`TwigQuery`]), parsers for
//! a compact textual form, resolution of label strings against a
//! document's [`axqa_xml::LabelTable`], and pretty-printing.

pub mod parse;
pub mod path;
pub mod twig;

pub use parse::{parse_path, parse_twig, QueryParseError};
pub use path::{Axis, PathExpr, ResolvedPath, ResolvedStep, Step, ValueOp, ValuePred};
pub use twig::{QVar, QueryNode, TwigQuery};
