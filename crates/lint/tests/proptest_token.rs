// Integration tests may panic on impossible cases.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property tests for the lint tokenizer (`crates/lint/src/token.rs`).
//!
//! Generated Rust-ish sources — items whose bodies mix the fragments the
//! tokenizer finds hardest (strings containing braces and comment
//! markers, raw strings, char literals vs lifetimes, block comments
//! containing quotes) — must tokenize *losslessly*: spans are strictly
//! ordered, never overlap, stay in bounds, and every byte between them
//! is plain whitespace. On the same sources, `#[cfg(test)]` masking must
//! be *exact*: every masked token lies inside a generated `#[cfg(test)]`
//! item, and every token inside such an item's body is masked.

use axqa_lint::token::{test_mask, tokenize};
use proptest::prelude::*;

/// Body fragments chosen to confuse a lesser tokenizer: every entry is
/// valid inside a `fn` body.
const FRAGMENTS: &[&str] = &[
    "let a = \"a { b } // not a comment\";",
    "let b = \"#[cfg(test)]\";",
    "let r = r#\"raw \"quoted\" { text\"#;",
    "let c = '{';",
    "let q = '\"';",
    "let lt: &'static str = \"y\";",
    "// line comment with \" quote and { brace",
    "/* block } comment with \" quote */",
    "let n = 0xFF_u32;",
    "let f = 1.5e-3;",
    "let sh = 1u32 << 2;",
    "if 1 == 2 && 3 != 4 { let mut e = 1; e >>= 1; }",
    "let range = 0..=9;",
    "let t = (1, 2).0;",
];

/// One generated item: full rendered text, whether it is `#[cfg(test)]`,
/// and the relative byte range of its brace-enclosed body content.
#[derive(Debug, Clone)]
struct Item {
    text: String,
    is_test: bool,
    body_rel: (usize, usize),
}

fn render_item(index: usize, shape: u8, fragment_picks: &[u8]) -> Item {
    let body: String = fragment_picks
        .iter()
        .map(|&p| {
            let fragment = FRAGMENTS[p as usize % FRAGMENTS.len()];
            format!("    {fragment}\n")
        })
        .collect();
    let (header, footer, is_test) = match shape % 3 {
        0 => (format!("fn plain_{index}() {{\n"), "}\n".to_string(), false),
        1 => (
            format!("#[cfg(test)]\nfn test_fn_{index}() {{\n"),
            "}\n".to_string(),
            true,
        ),
        _ => (
            format!("#[cfg(test)]\nmod test_mod_{index} {{\n    fn t() {{\n"),
            "    }\n}\n".to_string(),
            true,
        ),
    };
    let body_start = header.len();
    let body_end = body_start + body.len();
    Item {
        text: format!("{header}{body}{footer}"),
        is_test,
        body_rel: (body_start, body_end),
    }
}

fn items_strategy() -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec(((0u8..6), prop::collection::vec(0u8..64, 0..6)), 1..6).prop_map(
        |specs| {
            specs
                .iter()
                .enumerate()
                .map(|(i, (shape, picks))| render_item(i, *shape, picks))
                .collect()
        },
    )
}

/// An item's absolute `(full_range, body_range, is_test)` in the
/// assembled source.
type ItemRange = (usize, usize, usize, usize, bool);

/// Concatenates items and returns the source plus each item's ranges.
fn assemble(items: &[Item]) -> (String, Vec<ItemRange>) {
    let mut source = String::new();
    let mut ranges = Vec::new();
    for item in items {
        let start = source.len();
        source.push_str(&item.text);
        source.push('\n');
        ranges.push((
            start,
            start + item.text.len(),
            start + item.body_rel.0,
            start + item.body_rel.1,
            item.is_test,
        ));
    }
    (source, ranges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Lossless spans: ordered, non-overlapping, in bounds, and the
    // uncovered bytes are exactly the whitespace.
    #[test]
    fn tokenization_is_lossless(items in items_strategy()) {
        let (source, _) = assemble(&items);
        let tokens = tokenize(&source);
        let mut cursor = 0usize;
        for token in &tokens {
            prop_assert!(token.start >= cursor, "overlap/backtrack at {}", token.start);
            prop_assert!(token.end > token.start, "empty token at {}", token.start);
            prop_assert!(token.end <= source.len(), "token past the end");
            prop_assert!(
                source[cursor..token.start].chars().all(char::is_whitespace),
                "non-whitespace gap {:?} before {}",
                &source[cursor..token.start],
                token.start,
            );
            cursor = token.end;
        }
        prop_assert!(
            source[cursor..].chars().all(char::is_whitespace),
            "non-whitespace tail {:?}",
            &source[cursor..],
        );
    }

    // Line numbers are consistent with the span positions.
    #[test]
    fn token_lines_match_spans(items in items_strategy()) {
        let (source, _) = assemble(&items);
        for token in tokenize(&source) {
            let newlines = u32::try_from(source[..token.start].matches('\n').count()).unwrap();
            let expected = 1 + newlines;
            prop_assert_eq!(token.line, expected);
        }
    }

    // Masking is exact: masked tokens only inside #[cfg(test)] items,
    // and everything in a test item's body is masked.
    #[test]
    fn test_masking_is_exact(items in items_strategy()) {
        let (source, ranges) = assemble(&items);
        let tokens = tokenize(&source);
        let mask = test_mask(&source, &tokens);
        prop_assert_eq!(mask.len(), tokens.len());
        for (token, masked) in tokens.iter().zip(&mask) {
            let in_test_item = ranges
                .iter()
                .any(|&(start, end, _, _, is_test)| {
                    is_test && token.start >= start && token.end <= end
                });
            let in_test_body = ranges
                .iter()
                .any(|&(_, _, body_start, body_end, is_test)| {
                    is_test && token.start >= body_start && token.end <= body_end
                });
            if *masked {
                prop_assert!(
                    in_test_item,
                    "masked token {:?} at {} outside every #[cfg(test)] item",
                    token.text(&source),
                    token.start,
                );
            }
            if in_test_body {
                prop_assert!(
                    *masked,
                    "unmasked token {:?} at {} inside a #[cfg(test)] body",
                    token.text(&source),
                    token.start,
                );
            }
        }
    }
}
