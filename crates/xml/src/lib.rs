//! # axqa-xml — node-labeled XML tree substrate
//!
//! The paper (§2) models an XML document as a large node-labeled tree
//! `T(V, E)`: every node is an element with a label drawn from an alphabet
//! of string literals, and edges capture element containment. Values and
//! attributes are out of scope — the paper studies the *structural* part of
//! approximate answering — so this crate stores structure only.
//!
//! The crate provides:
//!
//! * [`LabelTable`] / [`LabelId`] — an interner mapping element tags to
//!   dense integer ids so that all downstream algorithms work on `u32`s.
//! * [`Document`] / [`NodeId`] — an arena-allocated tree with O(1) child
//!   append, parent links, and allocation-free traversal iterators.
//! * [`parse`] / [`write`] — a minimal well-formed-subset XML parser and
//!   writer (elements, the five predefined entities; comments, PIs and
//!   CDATA are tolerated and skipped; text content carries no structure).
//! * [`stats`] — document statistics used by the experiment harness.
//! * [`fxhash`] — a tiny Fx-style hasher for integer-keyed maps (the
//!   performance guide recommends a fast non-cryptographic hasher; the
//!   crate implements the well-known `FxHasher` algorithm directly since
//!   `rustc-hash` is not in the allowed dependency set).

pub mod error;
pub mod fxhash;
pub mod label;
pub mod parse;
pub mod stats;
pub mod tree;
pub mod write;

pub use error::XmlError;
pub use fxhash::{FxHashMap, FxHashSet};
pub use label::{LabelId, LabelTable};
pub use parse::parse_document;
pub use stats::DocStats;
pub use tree::{Document, DocumentBuilder, NodeId};
pub use write::{write_document, write_document_pretty};
