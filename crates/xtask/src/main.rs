#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! `cargo xtask` — repository automation.
//!
//! The only subcommand is `lint`, a thin CLI over the [`axqa_lint`]
//! engine (DESIGN.md §8 and §10): token-level per-file rules, the
//! call-graph analyses (panic-reachability surface, determinism
//! dataflow), workspace rules (crate layering, API-surface snapshot),
//! and the `lint-baseline.toml` ratchet. The process exits nonzero
//! when any non-baselined error-severity finding remains.
//!
//! ```text
//! cargo xtask lint [--format text|json|sarif] [--out PATH] [--sarif PATH]
//!                  [--metrics PATH] [--update-baseline] [--update-api-surface]
//!                  [--update-panic-surface] [--update-alloc-surface]
//! ```
//!
//! `--out PATH` writes the JSON report to PATH regardless of the
//! chosen display format (CI uploads it as an artifact); `--sarif
//! PATH` does the same for the SARIF 2.1.0 log that CI feeds to
//! GitHub code scanning. `--metrics PATH` drains the lint run's own
//! axqa-obs spans (`lint.tokenize`, `lint.parse`, `lint.callgraph`,
//! `lint.rules`, `lint.fixpoint`) into an `axqa-obs/2` metrics file so
//! lint runtime regressions surface like any other phase.

use std::process::ExitCode;

use axqa_lint::engine::{self, UpdateFlags};

/// The lint run's `--metrics` spans carry allocation profiles like
/// every other instrumented binary (DESIGN.md §12).
#[global_allocator]
static ALLOC: axqa_obs::alloc::CountingAlloc = axqa_obs::alloc::CountingAlloc;

const USAGE: &str = "usage: cargo xtask lint [--format text|json|sarif] [--out PATH] \
                     [--sarif PATH] [--metrics PATH] [--update-baseline] \
                     [--update-api-surface] [--update-panic-surface] \
                     [--update-alloc-surface]";

#[derive(Debug, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

#[derive(Debug)]
struct Args {
    format: Format,
    out: Option<String>,
    sarif: Option<String>,
    metrics: Option<String>,
    update: UpdateFlags,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        format: Format::Text,
        out: None,
        sarif: None,
        metrics: None,
        update: UpdateFlags::default(),
    };
    let mut iter = argv.iter();
    match iter.next().map(String::as_str) {
        Some("lint") => {}
        Some(other) => return Err(format!("unknown subcommand `{other}`\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--format" => {
                args.format = match iter.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    Some(other) => {
                        return Err(format!(
                            "unknown format `{other}` (text|json|sarif)\n{USAGE}"
                        ))
                    }
                    None => return Err(format!("--format needs a value\n{USAGE}")),
                };
            }
            "--out" => {
                args.out = Some(
                    iter.next()
                        .ok_or_else(|| format!("--out needs a path\n{USAGE}"))?
                        .clone(),
                );
            }
            "--sarif" => {
                args.sarif = Some(
                    iter.next()
                        .ok_or_else(|| format!("--sarif needs a path\n{USAGE}"))?
                        .clone(),
                );
            }
            "--metrics" => {
                args.metrics = Some(
                    iter.next()
                        .ok_or_else(|| format!("--metrics needs a path\n{USAGE}"))?
                        .clone(),
                );
            }
            "--update-baseline" => args.update.baseline = true,
            "--update-api-surface" => args.update.api_surface = true,
            "--update-panic-surface" => args.update.panic_surface = true,
            "--update-alloc-surface" => args.update.alloc_surface = true,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    // Record the engine's own spans when metrics are requested.
    let recorder = args.metrics.as_ref().map(|_| {
        let recorder = axqa_obs::Recorder::new();
        recorder.install();
        recorder
    });

    let root = engine::workspace_root()?;
    let outcome = engine::run(&root, args.update)?;

    if let (Some(path), Some(recorder)) = (&args.metrics, &recorder) {
        let snapshot = recorder.drain();
        std::fs::write(path, axqa_obs::export::metrics_json(&snapshot))
            .map_err(|e| format!("write {path}: {e}"))?;
        axqa_obs::uninstall();
    }

    match args.format {
        Format::Text => print!("{}", engine::render_text(&outcome)),
        Format::Json => print!("{}", engine::render_json(&outcome)),
        Format::Sarif => print!("{}", axqa_lint::sarif::render_sarif(&outcome)),
    }
    if let Some(path) = &args.out {
        std::fs::write(path, engine::render_json(&outcome))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = &args.sarif {
        std::fs::write(path, axqa_lint::sarif::render_sarif(&outcome))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    if outcome.wrote_baseline {
        println!("wrote {}", axqa_lint::baseline::BASELINE_PATH);
    }
    if outcome.wrote_api_surface {
        println!("wrote {}", axqa_lint::api_surface::SNAPSHOT_PATH);
    }
    if outcome.wrote_panic_surface {
        println!("wrote {}", axqa_lint::reach::SNAPSHOT_PATH);
    }
    if outcome.wrote_alloc_surface {
        println!("wrote {}", axqa_lint::hotpath::SNAPSHOT_PATH);
    }
    Ok(outcome.gate_passes())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("xtask: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let args = parse_args(&argv(&[
            "lint",
            "--format",
            "json",
            "--out",
            "lint-findings.json",
            "--sarif",
            "lint-findings.sarif",
            "--metrics",
            "lint-metrics.json",
            "--update-baseline",
            "--update-api-surface",
            "--update-panic-surface",
            "--update-alloc-surface",
        ]))
        .unwrap();
        assert_eq!(args.format, Format::Json);
        assert_eq!(args.out.as_deref(), Some("lint-findings.json"));
        assert_eq!(args.sarif.as_deref(), Some("lint-findings.sarif"));
        assert_eq!(args.metrics.as_deref(), Some("lint-metrics.json"));
        assert!(args.update.baseline);
        assert!(args.update.api_surface);
        assert!(args.update.panic_surface);
        assert!(args.update.alloc_surface);
    }

    #[test]
    fn parses_sarif_format() {
        let args = parse_args(&argv(&["lint", "--format", "sarif"])).unwrap();
        assert_eq!(args.format, Format::Sarif);
    }

    #[test]
    fn rejects_unknown_input() {
        assert!(parse_args(&argv(&[])).is_err());
        assert!(parse_args(&argv(&["frobnicate"])).is_err());
        assert!(parse_args(&argv(&["lint", "--format", "xml"])).is_err());
        assert!(parse_args(&argv(&["lint", "--nope"])).is_err());
        assert!(parse_args(&argv(&["lint", "--out"])).is_err());
        assert!(parse_args(&argv(&["lint", "--sarif"])).is_err());
        assert!(parse_args(&argv(&["lint", "--metrics"])).is_err());
    }

    #[test]
    fn defaults_are_text_and_check_only() {
        let args = parse_args(&argv(&["lint"])).unwrap();
        assert_eq!(args.format, Format::Text);
        assert!(args.out.is_none());
        assert!(args.sarif.is_none());
        assert!(args.metrics.is_none());
        assert!(!args.update.baseline);
        assert!(!args.update.api_surface);
        assert!(!args.update.panic_surface);
        assert!(!args.update.alloc_surface);
    }
}
