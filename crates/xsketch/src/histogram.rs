//! Joint edge histograms (§3.1).
//!
//! For a synopsis node `u` with outgoing edges `u → v_1 … u → v_n`, the
//! histogram `H_u(c_1, …, c_n)` records the fraction of `u`'s elements
//! having exactly `c_i` children in each `v_i`. Under a bucket budget the
//! most frequent count vectors are kept exactly and the tail collapses
//! into one *residual* bucket holding the tail's average vector — the
//! standard end-biased compression of the XSKETCH line of work.

use rand::Rng;

/// A bounded joint histogram over one node's outgoing edges.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeHistogram {
    /// `(count vector, fraction)` — exact buckets, heaviest first.
    pub buckets: Vec<(Vec<u32>, f64)>,
    /// Collapsed tail: `(average vector, fraction)`, if any mass remains.
    pub residual: Option<(Vec<f64>, f64)>,
    /// Dimensionality (number of outgoing edges).
    pub dims: usize,
}

impl EdgeHistogram {
    /// Builds a histogram from weighted exact vectors, keeping at most
    /// `max_buckets` exact buckets (≥ 1; one extra slot is used by the
    /// residual when the tail is non-empty).
    pub fn build(vectors: &[(Vec<u32>, f64)], max_buckets: usize) -> EdgeHistogram {
        let dims = vectors.first().map_or(0, |(v, _)| v.len());
        let total: f64 = vectors.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return EdgeHistogram {
                buckets: Vec::new(),
                residual: None,
                dims,
            };
        }
        let mut sorted: Vec<(Vec<u32>, f64)> = vectors.to_vec();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
        let keep = max_buckets.max(1).min(sorted.len());
        let head = &sorted[..keep];
        let tail = &sorted[keep..];
        let buckets: Vec<(Vec<u32>, f64)> =
            head.iter().map(|(v, w)| (v.clone(), w / total)).collect();
        let residual = if tail.is_empty() {
            None
        } else {
            let tail_mass: f64 = tail.iter().map(|&(_, w)| w).sum();
            let mut avg = vec![0.0f64; dims];
            for (v, w) in tail {
                for (slot, &c) in avg.iter_mut().zip(v.iter()) {
                    *slot += w * c as f64;
                }
            }
            for slot in &mut avg {
                *slot /= tail_mass;
            }
            Some((avg, tail_mass / total))
        };
        EdgeHistogram {
            buckets,
            residual,
            dims,
        }
    }

    /// Number of stored buckets (incl. the residual).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len() + usize::from(self.residual.is_some())
    }

    /// Mean child count along edge `dim`.
    pub fn mean(&self, dim: usize) -> f64 {
        let mut m: f64 = self.buckets.iter().map(|(v, f)| f * v[dim] as f64).sum();
        if let Some((avg, f)) = &self.residual {
            m += f * avg[dim];
        }
        m
    }

    /// Fraction of elements with ≥ 1 child along edge `dim`.
    pub fn prob_ge1(&self, dim: usize) -> f64 {
        let mut p: f64 = self
            .buckets
            .iter()
            .filter(|(v, _)| v[dim] >= 1)
            .map(|&(_, f)| f)
            .sum();
        if let Some((avg, f)) = &self.residual {
            // Tail average ≥ 1 ⇒ count the whole tail; else scale.
            p += f * avg[dim].min(1.0);
        }
        p.clamp(0.0, 1.0)
    }

    /// Fraction of elements with ≥ 1 child along *at least one* of the
    /// given edges (union over dimensions, exact on the head buckets).
    pub fn prob_any_ge1(&self, dims: &[usize]) -> f64 {
        let mut p: f64 = self
            .buckets
            .iter()
            .filter(|(v, _)| dims.iter().any(|&d| v[d] >= 1))
            .map(|&(_, f)| f)
            .sum();
        if let Some((avg, f)) = &self.residual {
            let miss: f64 = dims.iter().map(|&d| 1.0 - avg[d].min(1.0)).product();
            p += f * (1.0 - miss);
        }
        p.clamp(0.0, 1.0)
    }

    /// Samples a child-count vector (the §6.1 answer generator).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u32> {
        let mut pick: f64 = rng.gen();
        for (v, f) in &self.buckets {
            if pick < *f {
                return v.clone();
            }
            pick -= f;
        }
        if let Some((avg, _)) = &self.residual {
            // Stochastic rounding of the residual average vector.
            return avg
                .iter()
                .map(|&a| {
                    let base = a.floor();
                    let frac = a - base;
                    let rounded = axqa_xml::f64_to_u64(base).min(u64::from(u32::MAX));
                    #[allow(clippy::cast_possible_truncation)] // clamped above
                    let rounded = rounded as u32;
                    rounded.saturating_add(u32::from(rng.gen::<f64>() < frac))
                })
                .collect();
        }
        // Rounding slack: fall back to the heaviest bucket.
        self.buckets
            .first()
            .map(|(v, _)| v.clone())
            .unwrap_or_else(|| vec![0; self.dims])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_hist() -> EdgeHistogram {
        // Fig. 3(d) for node B: (c) counts {1: 1/2, 4: 1/2}.
        EdgeHistogram::build(&[(vec![1], 2.0), (vec![4], 2.0)], 4)
    }

    #[test]
    fn exact_when_within_budget() {
        let h = sample_hist();
        assert_eq!(h.num_buckets(), 2);
        assert!(h.residual.is_none());
        assert!((h.mean(0) - 2.5).abs() < 1e-12);
        assert!((h.prob_ge1(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_collapses_into_residual() {
        let vectors: Vec<(Vec<u32>, f64)> = (0..10).map(|i| (vec![i], 1.0 + i as f64)).collect();
        let h = EdgeHistogram::build(&vectors, 3);
        assert_eq!(h.buckets.len(), 3);
        assert!(h.residual.is_some());
        assert_eq!(h.num_buckets(), 4);
        // Mean is preserved exactly by the residual average.
        let total: f64 = vectors.iter().map(|&(_, w)| w).sum();
        let exact_mean: f64 = vectors.iter().map(|(v, w)| w * v[0] as f64).sum::<f64>() / total;
        assert!((h.mean(0) - exact_mean).abs() < 1e-12);
    }

    #[test]
    fn joint_probabilities() {
        // Anti-correlated: (2,0) half, (0,2) half.
        let h = EdgeHistogram::build(&[(vec![2, 0], 1.0), (vec![0, 2], 1.0)], 4);
        assert!((h.prob_ge1(0) - 0.5).abs() < 1e-12);
        assert!((h.prob_ge1(1) - 0.5).abs() < 1e-12);
        assert!((h.prob_any_ge1(&[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let h = sample_hist();
        let mut rng = StdRng::seed_from_u64(7);
        let mut ones = 0usize;
        let n = 20_000;
        for _ in 0..n {
            match h.sample(&mut rng)[0] {
                1 => ones += 1,
                4 => {}
                other => panic!("unexpected sampled count {other}"),
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn empty_histogram() {
        let h = EdgeHistogram::build(&[], 4);
        assert_eq!(h.num_buckets(), 0);
        assert_eq!(h.dims, 0);
    }
}
