//! Crate-layering rule: the workspace dependency graph must respect the
//! paper-mandated layer DAG (DESIGN.md §1/§6) — data model below query
//! model below evaluators below synopses below the harness — with no
//! cycles and no upward edges (`core` must never depend on `harness`).
//!
//! Edges come from each crate's `[dependencies]` section (a minimal
//! manifest scan in [`crate::engine`]); dev-dependencies are excluded
//! because tests may legitimately reach upward for fixtures and cargo
//! rejects build-breaking dev cycles itself.

use crate::{Finding, Rule, Scope, Severity, Workspace};

/// The declared layer of every workspace package. An edge `A → B` is
/// legal only when `layer(A) > layer(B)`; a package missing from this
/// table is itself a finding, so new crates must take a position in
/// the architecture before CI passes.
pub const LAYERS: &[(&str, u32)] = &[
    ("axqa-obs", 0),      // tracing/metrics: std-only, everything above may instrument
    ("axqa-xml", 0),      // data model: documents, labels, arena ids
    ("axqa-query", 1),    // twig queries over the data model
    ("axqa-synopsis", 2), // count-stable summaries, generic synopses
    ("axqa-eval", 2),     // exact twig evaluation (ground truth)
    ("axqa-core", 3),     // TreeSketch: TSBUILD/EVALQUERY (the paper)
    ("axqa-xsketch", 3),  // twig-XSketch baseline
    ("axqa-datagen", 3),  // dataset + workload generators
    ("axqa-distance", 4), // ESD/tree-edit metrics (compare synopses)
    ("axqa-bench", 5),    // criterion benches over everything below
    ("axqa-harness", 5),  // experiment harness
    ("axqa-cli", 5),      // command-line front end
    ("axqa", 6),          // umbrella re-export package (repo tests/)
    ("axqa-lint", 6),     // this engine (depends only on layer-0 axqa-obs)
    ("xtask", 7),         // automation driver (depends on axqa-lint)
];

/// Enforces [`LAYERS`] over the workspace manifests.
pub struct CrateLayering;

impl Rule for CrateLayering {
    fn id(&self) -> &'static str {
        "crate-layering"
    }
    fn describe(&self) -> &'static str {
        "workspace dependency edges respect the DESIGN.md §1 layer DAG (no cycles/upward edges)"
    }
    fn scope(&self) -> Scope {
        Scope::Workspace
    }
    fn check_workspace(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
        check_edges(&workspace.dep_edges, LAYERS, findings);
    }
}

/// The checker proper, parameterized over edges and layers so tests can
/// inject violations (an upward `core → harness` edge, a cycle) without
/// touching real manifests.
pub fn check_edges(
    edges: &[(String, Vec<String>)],
    layers: &[(&str, u32)],
    findings: &mut Vec<Finding>,
) {
    let layer_of = |name: &str| layers.iter().find(|(n, _)| *n == name).map(|(_, l)| *l);
    let manifest = |name: &str| format!("{}/Cargo.toml", crate_dir(name));

    for (package, deps) in edges {
        let Some(from_layer) = layer_of(package) else {
            findings.push(Finding {
                rule: "crate-layering",
                severity: Severity::Error,
                file: manifest(package),
                line: 0,
                span: (0, 0),
                message: format!(
                    "crate `{package}` has no declared layer — add it to LAYERS in \
                     crates/lint/src/layering.rs (DESIGN.md §1)"
                ),
            });
            continue;
        };
        for dep in deps {
            let Some(to_layer) = layer_of(dep) else {
                continue; // external dep (vendor stub) — not layered
            };
            if from_layer <= to_layer {
                findings.push(Finding {
                    rule: "crate-layering",
                    severity: Severity::Error,
                    file: manifest(package),
                    line: 0,
                    span: (0, 0),
                    message: format!(
                        "upward dependency `{package}` (layer {from_layer}) → `{dep}` \
                         (layer {to_layer}): lower layers must not depend on \
                         higher/equal ones (DESIGN.md §1)"
                    ),
                });
            }
        }
    }

    for cycle in find_cycles(edges) {
        findings.push(Finding {
            rule: "crate-layering",
            severity: Severity::Error,
            file: manifest(&cycle[0]),
            line: 0,
            span: (0, 0),
            message: format!("dependency cycle: {}", cycle.join(" → ")),
        });
    }
}

/// Workspace-relative crate directory for a package name (`axqa-core` →
/// `crates/core`, the umbrella `axqa` → the repo root).
fn crate_dir(package: &str) -> String {
    match package {
        "axqa" => ".".to_string(),
        "xtask" => "crates/xtask".to_string(),
        other => format!("crates/{}", other.strip_prefix("axqa-").unwrap_or(other)),
    }
}

/// Finds one representative cycle per strongly-connected knot via DFS
/// with an explicit color map (the graph has ~a dozen nodes).
fn find_cycles(edges: &[(String, Vec<String>)]) -> Vec<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let index_of = |name: &str| edges.iter().position(|(n, _)| n == name);
    let mut color = vec![Color::White; edges.len()];
    let mut cycles = Vec::new();

    fn dfs(
        at: usize,
        edges: &[(String, Vec<String>)],
        index_of: &dyn Fn(&str) -> Option<usize>,
        color: &mut [Color],
        stack: &mut Vec<usize>,
        cycles: &mut Vec<Vec<String>>,
    ) {
        color[at] = Color::Gray;
        stack.push(at);
        for dep in &edges[at].1 {
            let Some(next) = index_of(dep) else { continue };
            match color[next] {
                Color::White => dfs(next, edges, index_of, color, stack, cycles),
                Color::Gray => {
                    // Found a back edge: report stack from `next` to `at`.
                    if let Some(pos) = stack.iter().position(|&n| n == next) {
                        let mut cycle: Vec<String> =
                            stack[pos..].iter().map(|&n| edges[n].0.clone()).collect();
                        cycle.push(edges[next].0.clone());
                        cycles.push(cycle);
                    }
                }
                Color::Black => {}
            }
        }
        stack.pop();
        color[at] = Color::Black;
    }

    for start in 0..edges.len() {
        if color[start] == Color::White {
            let mut stack = Vec::new();
            dfs(start, edges, &index_of, &mut color, &mut stack, &mut cycles);
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(&str, &[&str])]) -> Vec<(String, Vec<String>)> {
        pairs
            .iter()
            .map(|(n, deps)| (n.to_string(), deps.iter().map(|d| d.to_string()).collect()))
            .collect()
    }

    #[test]
    fn real_layering_shape_passes() {
        let graph = edges(&[
            ("axqa-xml", &[]),
            ("axqa-query", &["axqa-xml"]),
            ("axqa-eval", &["axqa-xml", "axqa-query"]),
            ("axqa-synopsis", &["axqa-xml"]),
            (
                "axqa-core",
                &["axqa-xml", "axqa-query", "axqa-synopsis", "axqa-eval"],
            ),
            (
                "axqa-harness",
                &["axqa-core", "axqa-distance", "axqa-datagen"],
            ),
            ("axqa-distance", &["axqa-core"]),
            ("axqa-datagen", &["axqa-synopsis"]),
            ("xtask", &["axqa-lint"]),
            ("axqa-lint", &[]),
        ]);
        let mut findings = Vec::new();
        check_edges(&graph, LAYERS, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn injected_upward_dependency_fails() {
        // The acceptance scenario: core grows a dependency on harness.
        let graph = edges(&[
            ("axqa-core", &["axqa-xml", "axqa-harness"]),
            ("axqa-xml", &[]),
            ("axqa-harness", &["axqa-core"]),
        ]);
        let mut findings = Vec::new();
        check_edges(&graph, LAYERS, &mut findings);
        let upward: Vec<_> = findings
            .iter()
            .filter(|f| f.message.contains("upward dependency"))
            .collect();
        assert_eq!(upward.len(), 1, "{findings:?}");
        assert!(upward[0]
            .message
            .contains("`axqa-core` (layer 3) → `axqa-harness` (layer 5)"));
        // The same graph is cyclic; the cycle is reported too.
        assert!(findings
            .iter()
            .any(|f| f.message.contains("dependency cycle")));
    }

    #[test]
    fn same_layer_edge_is_rejected() {
        let graph = edges(&[("axqa-eval", &["axqa-synopsis"])]);
        let mut findings = Vec::new();
        check_edges(&graph, LAYERS, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn unknown_crate_must_declare_a_layer() {
        let graph = edges(&[("axqa-newthing", &["axqa-xml"])]);
        let mut findings = Vec::new();
        check_edges(&graph, LAYERS, &mut findings);
        assert!(findings[0].message.contains("no declared layer"));
    }

    #[test]
    fn cycles_are_reported_with_a_path() {
        let graph = edges(&[("axqa-xml", &["axqa-query"]), ("axqa-query", &["axqa-xml"])]);
        let mut findings = Vec::new();
        check_edges(&graph, LAYERS, &mut findings);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("dependency cycle")),
            "{findings:?}"
        );
    }
}
