//! Swiss-Prot-style protein annotation documents.
//!
//! Entries mix many optional and *variant* annotation blocks (comments
//! of several shapes, db-references of several shapes, features with
//! optional sub-fields), producing very high structural diversity: the
//! count-stable summary is a large fraction of the document, matching
//! the paper's Table 1 (SProt: 10 MB / 645 KB stable).

use crate::GenConfig;
use axqa_xml::{Document, DocumentBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a Swiss-Prot-style document.
pub fn generate(config: &GenConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xfeed_beef_cafe);
    let mut b = DocumentBuilder::new("sprot");
    while b.len() < config.target_elements {
        gen_entry(&mut b, &mut rng);
    }
    b.finish()
}

fn gen_entry(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("entry");
    b.leaf("name");
    for _ in 0..rng.gen_range(1..=3) {
        b.leaf("accession");
    }
    b.open("protein");
    b.leaf("pname");
    if rng.gen_bool(0.4) {
        b.leaf("synonym");
    }
    if rng.gen_bool(0.2) {
        b.leaf("ecnumber");
    }
    b.close();
    if rng.gen_bool(0.7) {
        b.open("gene");
        b.leaf("gname");
        for _ in 0..rng.gen_range(0..=2) {
            b.leaf("gsynonym");
        }
        b.close();
    }
    b.open("organism");
    b.leaf("oname");
    for _ in 0..rng.gen_range(1..=5) {
        b.leaf("taxon");
    }
    b.close();
    for _ in 0..rng.gen_range(1..=6) {
        gen_reference(b, rng);
    }
    for _ in 0..rng.gen_range(0..=5) {
        gen_comment(b, rng);
    }
    for _ in 0..rng.gen_range(0..=8) {
        gen_dbreference(b, rng);
    }
    if rng.gen_bool(0.8) {
        b.open("keywords");
        for _ in 0..rng.gen_range(1..=6) {
            b.leaf("keyword");
        }
        b.close();
    }
    for _ in 0..rng.gen_range(0..=10) {
        gen_feature(b, rng);
    }
    b.open("sequence");
    b.leaf("checksum");
    b.close();
    b.close();
}

fn gen_reference(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("reference");
    b.open("citation");
    match rng.gen_range(0..3) {
        0 => {
            // Journal article.
            b.leaf("ctitle");
            b.leaf("journal");
            b.leaf("volume");
            b.leaf("pages");
            b.leaf("cyear");
        }
        1 => {
            // Submission.
            b.leaf("ctitle");
            b.leaf("db");
            b.leaf("cyear");
        }
        _ => {
            // Book chapter.
            b.leaf("ctitle");
            b.leaf("book");
            b.leaf("publisher");
        }
    }
    b.close();
    b.open("authorlist");
    for _ in 0..rng.gen_range(1..=8) {
        b.leaf("author");
    }
    b.close();
    if rng.gen_bool(0.3) {
        b.leaf("rposition");
    }
    b.close();
}

fn gen_comment(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("comment");
    match rng.gen_range(0..5) {
        0 => {
            b.leaf("function");
        }
        1 => {
            b.leaf("subcellular");
            if rng.gen_bool(0.5) {
                b.leaf("topology");
            }
        }
        2 => {
            b.open("interaction");
            b.leaf("interactant");
            b.leaf("interactant");
            b.close();
        }
        3 => {
            b.leaf("similarity");
        }
        _ => {
            b.open("disease");
            b.leaf("dname");
            if rng.gen_bool(0.4) {
                b.leaf("mim");
            }
            b.close();
        }
    }
    b.close();
}

fn gen_dbreference(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("dbreference");
    b.leaf("dbid");
    match rng.gen_range(0..4) {
        0 => {}
        1 => {
            b.leaf("property");
        }
        2 => {
            b.leaf("property");
            b.leaf("property");
        }
        _ => {
            b.leaf("molecule");
            b.leaf("property");
        }
    }
    b.close();
}

fn gen_feature(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.open("feature");
    b.leaf("ftype");
    b.open("location");
    if rng.gen_bool(0.7) {
        b.leaf("begin");
        b.leaf("end");
    } else {
        b.leaf("position");
    }
    b.close();
    if rng.gen_bool(0.3) {
        b.leaf("fdescription");
    }
    if rng.gen_bool(0.1) {
        b.leaf("fid");
    }
    b.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use axqa_synopsis::build_stable;

    #[test]
    fn structural_diversity_is_high() {
        let doc = generate(&GenConfig::sized(30_000));
        let stable = build_stable(&doc);
        // Entries essentially never share a whole-subtree shape.
        let entry = doc.labels().get("entry").unwrap();
        let classes = stable.classes_with_label(entry).count();
        let entries = doc.node_ids().filter(|&n| doc.label(n) == entry).count();
        assert!(
            classes as f64 > entries as f64 * 0.8,
            "{classes} classes for {entries} entries"
        );
    }

    #[test]
    fn shape() {
        let doc = generate(&GenConfig::sized(5_000));
        assert_eq!(doc.label_name(doc.root()), "sprot");
        for tag in ["entry", "reference", "comment", "feature", "dbreference"] {
            assert!(doc.labels().get(tag).is_some(), "missing {tag}");
        }
    }
}
