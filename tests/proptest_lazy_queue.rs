// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Property tests of the lazy stale-skipping merge queue
//! (`core/src/queue.rs`; DESIGN.md §13).
//!
//! The production TSBUILD path drains a `MergeQueue`: stale heap entries
//! whose endpoints' merge-generation stamps are unchanged are re-pushed
//! from a score memo instead of re-running `evaluate_merge`. The loop
//! rewrite kept the eager pop-and-rescore implementation as
//! `ts_build_eager`, and these tests pin the two bitwise under random
//! documents × budgets × pool bounds: the *full merge sequence*
//! (`merge_log` under `record_merges`), the pool-rebuild trajectory,
//! `squared_error` bits, final byte size, and every node of the final
//! sketch must be identical. Any divergence means a memo hit served a
//! ratio that eager re-evaluation would not have produced.

use axqa::core::{try_ts_build, ts_build_eager, BuildConfig, BuildReport};
use axqa::prelude::*;
use proptest::prelude::*;

/// A random tree: label index and children.
#[derive(Debug, Clone)]
struct Tree {
    label: u8,
    children: Vec<Tree>,
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = (0u8..4).prop_map(|label| Tree {
        label,
        children: vec![],
    });
    leaf.prop_recursive(4, 60, 5, |inner| {
        ((0u8..4), prop::collection::vec(inner, 0..5))
            .prop_map(|(label, children)| Tree { label, children })
    })
}

fn label_name(index: u8) -> String {
    format!("l{index}")
}

fn to_document(tree: &Tree) -> Document {
    fn add(doc: &mut Document, parent: axqa::xml::NodeId, tree: &Tree) {
        let node = doc.add_child_named(parent, &label_name(tree.label));
        for child in &tree.children {
            add(doc, node, child);
        }
    }
    let mut doc = Document::new(&label_name(tree.label));
    let root = doc.root();
    for child in &tree.children {
        add(&mut doc, root, child);
    }
    doc
}

/// Asserts every observable of the two builds is identical, the
/// floating-point ones bitwise.
fn assert_reports_identical(lazy: &BuildReport, eager: &BuildReport, context: &str) {
    assert_eq!(lazy.merges, eager.merges, "{context}: merges");
    assert_eq!(
        lazy.pool_rebuilds, eager.pool_rebuilds,
        "{context}: pool_rebuilds"
    );
    assert_eq!(
        lazy.merge_log, eager.merge_log,
        "{context}: merge sequence diverged"
    );
    assert_eq!(
        lazy.squared_error.to_bits(),
        eager.squared_error.to_bits(),
        "{context}: squared_error {} vs {}",
        lazy.squared_error,
        eager.squared_error
    );
    assert_eq!(
        lazy.final_bytes, eager.final_bytes,
        "{context}: final_bytes"
    );
    assert_eq!(
        lazy.reached_budget, eager.reached_budget,
        "{context}: reached_budget"
    );
    assert_eq!(
        lazy.stable_assignment, eager.stable_assignment,
        "{context}: stable_assignment"
    );
    assert_eq!(lazy.sketch.len(), eager.sketch.len(), "{context}: nodes");
    for (l, e) in lazy.sketch.nodes().iter().zip(eager.sketch.nodes()) {
        assert_eq!(l, e, "{context}: sketch node diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The lazy queue reproduces the eager merge sequence bitwise at
    // every compression level, from barely-compressing down to the
    // label-split floor.
    #[test]
    fn lazy_queue_matches_eager_across_budgets(
        tree in tree_strategy(),
        frac in 1u32..100,
    ) {
        let doc = to_document(&tree);
        let stable = build_stable(&doc);
        let exact = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        let random = (exact * frac as usize / 100).max(1);
        for budget in [exact / 2, exact / 4, exact / 8, random, 1] {
            let budget = budget.max(1);
            let mut config = BuildConfig::with_budget(budget);
            config.threads = 1;
            config.record_merges = true;
            let lazy = try_ts_build(&stable, &config).unwrap();
            let eager = ts_build_eager(&stable, &config).unwrap();
            assert_reports_identical(&lazy, &eager, &format!("budget {budget}"));
        }
    }

    // Tiny pool bounds force many CREATEPOOL rounds and Lh drains —
    // the regimes where the memo sees the most stale traffic and the
    // heap-length trajectory (pool_rebuilds) is easiest to perturb.
    #[test]
    fn lazy_queue_matches_eager_under_stressed_pool_bounds(
        tree in tree_strategy(),
        heap_upper in 2usize..24,
        lower_frac in 0usize..100,
    ) {
        let doc = to_document(&tree);
        let stable = build_stable(&doc);
        let exact = SizeModel::TREESKETCH.graph_bytes(stable.len(), stable.num_edges());
        let mut config = BuildConfig::with_budget((exact / 6).max(1));
        config.threads = 1;
        config.record_merges = true;
        config.heap_upper = heap_upper;
        config.heap_lower = heap_upper * lower_frac / 100;
        // Window pairing stresses duplicate/forwarded candidates.
        config.group_all_pairs_cap = 4;
        config.window = 2;
        let lazy = try_ts_build(&stable, &config).unwrap();
        let eager = ts_build_eager(&stable, &config).unwrap();
        assert_reports_identical(
            &lazy,
            &eager,
            &format!("Uh {heap_upper} Lh {}", config.heap_lower),
        );
    }
}
