// Tests opt back into panicking extractors; library code returns errors
// (workspace lint table, DESIGN.md "Static analysis & invariants").
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]

//! # axqa-xml — node-labeled XML tree substrate
//!
//! The paper (§2) models an XML document as a large node-labeled tree
//! `T(V, E)`: every node is an element with a label drawn from an alphabet
//! of string literals, and edges capture element containment. Values and
//! attributes are out of scope — the paper studies the *structural* part of
//! approximate answering — so this crate stores structure only.
//!
//! The crate provides:
//!
//! * [`LabelTable`] / [`LabelId`] — an interner mapping element tags to
//!   dense integer ids so that all downstream algorithms work on `u32`s.
//! * [`Document`] / [`NodeId`] — an arena-allocated tree with O(1) child
//!   append, parent links, and allocation-free traversal iterators.
//! * [`parse`] / [`write`] — a minimal well-formed-subset XML parser and
//!   writer (elements, the five predefined entities; comments, PIs and
//!   CDATA are tolerated and skipped; text content carries no structure).
//! * [`stats`] — document statistics used by the experiment harness.
//! * [`fxhash`] — a tiny Fx-style hasher for integer-keyed maps (the
//!   performance guide recommends a fast non-cryptographic hasher; the
//!   crate implements the well-known `FxHasher` algorithm directly since
//!   `rustc-hash` is not in the allowed dependency set).

pub mod error;
pub mod fxhash;
pub mod label;
pub mod parse;
pub mod stats;
pub mod tree;
pub mod write;

pub use error::XmlError;

/// Converts a container length into a dense `u32` id.
///
/// Every arena in the workspace (document nodes, synopsis nodes, nesting
/// trees, answer trees) addresses entries with `u32`; beyond that the
/// structure is unrepresentable and aborting beats silently aliasing ids.
///
/// # Panics
/// Panics if `len` exceeds `u32::MAX`.
#[inline]
#[must_use]
pub fn dense_id(len: usize) -> u32 {
    match u32::try_from(len) {
        Ok(id) => id,
        Err(_) => panic!("id space overflow: {len} does not fit in u32"),
    }
}

/// Converts an estimated (floating-point) count to an integer count by
/// truncation toward zero, clamping NaN and negatives to `0` and values
/// beyond `u64::MAX` to the maximum.
///
/// This is the single audited float→count conversion in the workspace;
/// the cast lints are allowed here precisely because the clamping makes
/// the `as` conversion total.
#[inline]
#[must_use]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn f64_to_u64(value: f64) -> u64 {
    if value.is_nan() || value <= 0.0 {
        0
    } else if value >= 18_446_744_073_709_551_615.0 {
        u64::MAX
    } else {
        value as u64
    }
}
pub use fxhash::{FxHashMap, FxHashSet};
pub use label::{LabelId, LabelTable};
pub use parse::parse_document;
pub use stats::DocStats;
pub use tree::{Document, DocumentBuilder, NodeId};
pub use write::{write_document, write_document_pretty};
