// Examples/integration tests are demo code: panicking extractors are fine.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::arithmetic_side_effects
)]

//! Property tests for the distance substrate: Zhang–Shasha is checked
//! against a brute-force forest DP, exact EMD against the greedy
//! matcher, and the XML parser against arbitrary byte soup.

use axqa::distance::setdist::{SetDistance, SetItem};
use axqa::distance::{tree_edit_distance, EditCosts};
use axqa::prelude::*;
use axqa::xml::NodeId;
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Reference implementation: brute-force ordered forest edit distance.
// ---------------------------------------------------------------------

fn children(doc: &Document, n: NodeId) -> Vec<NodeId> {
    doc.children(n).collect()
}

type Memo = HashMap<(Vec<u32>, Vec<u32>), f64>;

fn forest_dist(
    d1: &Document,
    f1: &[NodeId],
    d2: &Document,
    f2: &[NodeId],
    costs: &EditCosts,
    memo: &mut Memo,
) -> f64 {
    let key = (
        f1.iter().map(|n| n.0).collect::<Vec<_>>(),
        f2.iter().map(|n| n.0).collect::<Vec<_>>(),
    );
    if let Some(&v) = memo.get(&key) {
        return v;
    }
    let result = if f1.is_empty() && f2.is_empty() {
        0.0
    } else if f1.is_empty() {
        let (last, rest) = f2.split_last().unwrap();
        forest_dist(d1, f1, d2, rest, costs, memo)
            + forest_dist(d1, &[], d2, &children(d2, *last), costs, memo)
            + costs.insert
    } else if f2.is_empty() {
        let (last, rest) = f1.split_last().unwrap();
        forest_dist(d1, rest, d2, f2, costs, memo)
            + forest_dist(d1, &children(d1, *last), d2, &[], costs, memo)
            + costs.delete
    } else {
        let (l1, r1) = f1.split_last().unwrap();
        let (l2, r2) = f2.split_last().unwrap();
        let del = forest_dist(
            d1,
            &[r1, &children(d1, *l1)[..]].concat(),
            d2,
            f2,
            costs,
            memo,
        ) + costs.delete;
        let ins = forest_dist(
            d1,
            f1,
            d2,
            &[r2, &children(d2, *l2)[..]].concat(),
            costs,
            memo,
        ) + costs.insert;
        let relabel = if d1.label_name(*l1) == d2.label_name(*l2) {
            0.0
        } else {
            costs.relabel
        };
        let mat = forest_dist(d1, r1, d2, r2, costs, memo)
            + forest_dist(d1, &children(d1, *l1), d2, &children(d2, *l2), costs, memo)
            + relabel;
        del.min(ins).min(mat)
    };
    memo.insert(key, result);
    result
}

fn brute_force_edit(d1: &Document, d2: &Document, costs: &EditCosts) -> f64 {
    let mut memo = Memo::new();
    forest_dist(d1, &[d1.root()], d2, &[d2.root()], costs, &mut memo)
}

// ---------------------------------------------------------------------
// Random small trees (kept tiny: the brute force is exponential-ish).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Tree {
    label: u8,
    children: Vec<Tree>,
}

fn small_tree() -> impl Strategy<Value = Tree> {
    let leaf = (0u8..3).prop_map(|label| Tree {
        label,
        children: vec![],
    });
    leaf.prop_recursive(3, 9, 3, |inner| {
        ((0u8..3), prop::collection::vec(inner, 0..3))
            .prop_map(|(label, children)| Tree { label, children })
    })
}

fn to_document(tree: &Tree) -> Document {
    fn add(doc: &mut Document, parent: NodeId, tree: &Tree) {
        let node = doc.add_child_named(parent, &format!("l{}", tree.label));
        for child in &tree.children {
            add(doc, node, child);
        }
    }
    let mut doc = Document::new(&format!("l{}", tree.label));
    let root = doc.root();
    for child in &tree.children {
        add(&mut doc, root, child);
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zhang_shasha_matches_brute_force(t1 in small_tree(), t2 in small_tree()) {
        let d1 = to_document(&t1);
        let d2 = to_document(&t2);
        for costs in [EditCosts::default(), EditCosts::insert_delete_only()] {
            let fast = tree_edit_distance(&d1, &d2, &costs);
            let slow = brute_force_edit(&d1, &d2, &costs);
            prop_assert!(
                (fast - slow).abs() < 1e-9,
                "ZS {} vs brute force {} ({:?})", fast, slow, costs
            );
        }
    }

    #[test]
    fn exact_emd_never_beats_greedy_from_below(
        sizes_u in prop::collection::vec((0.5f64..8.0, 0.1f64..4.0), 1..5),
        sizes_v in prop::collection::vec((0.5f64..8.0, 0.1f64..4.0), 1..5),
        dists in prop::collection::vec(0.0f64..20.0, 25),
    ) {
        // With exponent 1 the linearized EMD is exactly optimal, so it
        // must be ≤ the greedy matcher on every instance.
        let u: Vec<SetItem> = sizes_u
            .iter()
            .map(|&(size, mult)| SetItem { size, mult })
            .collect();
        let v: Vec<SetItem> = sizes_v
            .iter()
            .map(|&(size, mult)| SetItem { size, mult })
            .collect();
        let d: Vec<f64> = (0..u.len() * v.len()).map(|i| dists[i % dists.len()]).collect();
        let greedy = SetDistance::GreedyMac { exponent: 1.0 }.eval(&u, &v, &d);
        let emd = SetDistance::Emd { exponent: 1.0 }.eval(&u, &v, &d);
        prop_assert!(emd <= greedy + 1e-6, "emd {} > greedy {}", emd, greedy);
        prop_assert!(emd >= 0.0);
    }

    #[test]
    fn set_distances_are_zero_on_identical_sets(
        items in prop::collection::vec((0.5f64..8.0, 0.1f64..4.0), 1..5),
    ) {
        let u: Vec<SetItem> = items
            .iter()
            .map(|&(size, mult)| SetItem { size, mult })
            .collect();
        // Identity distance matrix: d(i, i) = 0, off-diagonal large.
        let n = u.len();
        let d: Vec<f64> = (0..n * n)
            .map(|i| if i / n == i % n { 0.0 } else { 100.0 })
            .collect();
        for sd in [
            SetDistance::GreedyMac { exponent: 2.0 },
            SetDistance::Emd { exponent: 2.0 },
        ] {
            let dist = sd.eval(&u, &u, &d);
            prop_assert!(dist.abs() < 1e-9, "{:?}: {}", sd, dist);
        }
    }

    #[test]
    fn parser_never_panics_on_garbage(input in "\\PC*") {
        // Any outcome is fine except a panic.
        let _ = parse_document(&input);
    }

    #[test]
    fn parser_accepts_what_writer_emits_after_mutation(t in small_tree()) {
        // Escaped text between tags must not change the structure.
        let doc = to_document(&t);
        let compact = write_document(&doc);
        let with_noise = compact.replace("><", ">some text &amp; more<");
        let reparsed = parse_document(&with_noise).unwrap();
        prop_assert_eq!(reparsed.len(), doc.len());
    }
}
