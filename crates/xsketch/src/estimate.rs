//! Twig selectivity estimation over a twig-XSketch.
//!
//! Follows the published twig-XSketch estimation framework: main-path
//! descendant counts multiply histogram means edge by edge; branching
//! predicates use the *histogram* where it helps — for a one-step branch
//! the joint histogram gives the exact fraction of elements with at
//! least one matching child (`P(any c_i ≥ 1)`), capturing correlations
//! the TreeSketch average cannot — and fall back to
//! inclusion–exclusion over expected fractions for deeper branches,
//! under the same path-independence assumptions as §4.3.
//!
//! Value predicates (`[. op c]`, the TreeSketch-side extension) are
//! *ignored* by this baseline — it has no value summaries, matching the
//! original twig-XSketch's structural scope — so estimates for
//! value-selective twigs are structural upper bounds.

use crate::sketch::{XSketch, XsNodeId};
use axqa_query::{Axis, QVar, ResolvedPath, ResolvedStep, TwigQuery};
use axqa_xml::fxhash::FxHashMap;

/// Estimation knobs (mirrors `axqa_core::EvalConfig`).
#[derive(Debug, Clone)]
pub struct XsEvalConfig {
    /// Max synopsis edges one descendant step may traverse; `None` uses
    /// the synopsis height + 1.
    pub max_descendant_depth: Option<u32>,
    /// Prune embeddings below this accumulated count.
    pub epsilon: f64,
}

impl Default for XsEvalConfig {
    fn default() -> Self {
        XsEvalConfig {
            max_descendant_depth: None,
            epsilon: 1e-9,
        }
    }
}

/// Estimates the number of binding tuples of `query`; 0.0 when a
/// required variable has no bindings.
pub fn xs_estimate_selectivity(sketch: &XSketch, query: &TwigQuery, config: &XsEvalConfig) -> f64 {
    let labels = sketch.labels();
    let resolved: Vec<ResolvedPath> = query
        .vars()
        .skip(1)
        .map(|v| query.node(v).path.resolve(labels))
        .collect();
    let walker = XsWalker {
        sketch,
        epsilon: config.epsilon,
        max_depth: config
            .max_descendant_depth
            .unwrap_or_else(|| sketch.height().saturating_add(1)),
    };

    // Result graph keyed by (node, var), as in EVALQUERY.
    struct RNode {
        xs: XsNodeId,
        var: QVar,
        edges: Vec<(u32, f64)>,
    }
    let mut nodes: Vec<RNode> = vec![RNode {
        xs: sketch.root(),
        var: QVar::ROOT,
        edges: Vec::new(),
    }];
    let mut by_var: Vec<Vec<u32>> = vec![Vec::new(); query.num_vars()];
    by_var[0].push(0);
    let mut index: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    index.insert((sketch.root().0, 0), 0);

    for var in query.vars() {
        for qc in query.children(var) {
            let path = &resolved[qc.index() - 1];
            let bind = by_var[var.index()].clone();
            for uq in bind {
                let context = nodes[uq as usize].xs;
                let counts = walker.path_counts(context, &path.steps);
                let mut sorted: Vec<(XsNodeId, f64)> = counts.into_iter().collect();
                sorted.sort_unstable_by_key(|&(v, _)| v);
                for (v, k) in sorted {
                    if k <= config.epsilon {
                        continue;
                    }
                    let key = (v.0, qc.0);
                    let vq = match index.get(&key) {
                        Some(&vq) => vq,
                        None => {
                            let vq = axqa_xml::dense_id(nodes.len());
                            nodes.push(RNode {
                                xs: v,
                                var: qc,
                                edges: Vec::new(),
                            });
                            index.insert(key, vq);
                            by_var[qc.index()].push(vq);
                            vq
                        }
                    };
                    let edges = &mut nodes[uq as usize].edges;
                    match edges.iter_mut().find(|(t, _)| *t == vq) {
                        Some((_, c)) => *c += k,
                        None => edges.push((vq, k)),
                    }
                }
            }
        }
    }

    for var in query.vars().skip(1) {
        if query.effectively_required(var) && by_var[var.index()].is_empty() {
            return 0.0;
        }
    }

    // Bottom-up tuple counting (identical to §4.4).
    let mut tuples = vec![0.0f64; nodes.len()];
    for i in (0..nodes.len()).rev() {
        let node = &nodes[i];
        let mut product = 1.0f64;
        for qc in query.children(node.var) {
            let sum: f64 = node
                .edges
                .iter()
                .filter(|&&(t, _)| nodes[t as usize].var == qc)
                .map(|&(t, k)| k * tuples[t as usize])
                .sum();
            product *= if query.node(qc).optional {
                sum.max(1.0)
            } else {
                sum
            };
        }
        tuples[i] = product;
    }
    tuples[0]
}

/// Path walker over a twig-XSketch (histogram-aware).
pub(crate) struct XsWalker<'a> {
    pub(crate) sketch: &'a XSketch,
    pub(crate) epsilon: f64,
    pub(crate) max_depth: u32,
}

/// One descendant-axis step being matched: the step itself, its
/// resolved target label, and the remaining pattern after it.
struct DescentStep<'p> {
    step: &'p ResolvedStep,
    label: axqa_xml::LabelId,
    rest: &'p [ResolvedStep],
}

impl XsWalker<'_> {
    /// Per-endpoint descendant counts of `steps` from `from`.
    pub(crate) fn path_counts(
        &self,
        from: XsNodeId,
        steps: &[ResolvedStep],
    ) -> FxHashMap<XsNodeId, f64> {
        let mut out = FxHashMap::default();
        self.walk(from, steps, 1.0, &mut out);
        out
    }

    fn walk(
        &self,
        node: XsNodeId,
        steps: &[ResolvedStep],
        acc: f64,
        out: &mut FxHashMap<XsNodeId, f64>,
    ) {
        let Some((step, rest)) = steps.split_first() else {
            *out.entry(node).or_insert(0.0) += acc;
            return;
        };
        let Some(label) = step.label else { return };
        match step.axis {
            Axis::Child => {
                // Histogram-aware child step with predicates on the
                // *source* histogram where the branch is one child step.
                for (dim, edge) in self.sketch.node(node).edges.iter().enumerate() {
                    if self.sketch.node(edge.target).label != label {
                        continue;
                    }
                    let _ = dim;
                    let scaled = acc * edge.avg * self.step_selectivity(edge.target, step);
                    if scaled > self.epsilon {
                        self.walk(edge.target, rest, scaled, out);
                    }
                }
            }
            Axis::Descendant => {
                let descent = DescentStep { step, label, rest };
                self.descend(node, &descent, acc, self.max_depth, out);
            }
        }
    }

    fn descend(
        &self,
        node: XsNodeId,
        descent: &DescentStep<'_>,
        acc: f64,
        depth_left: u32,
        out: &mut FxHashMap<XsNodeId, f64>,
    ) {
        if depth_left == 0 {
            return;
        }
        for edge in &self.sketch.node(node).edges {
            let scaled = acc * edge.avg;
            if scaled <= self.epsilon {
                continue;
            }
            if self.sketch.node(edge.target).label == descent.label {
                let here = scaled * self.step_selectivity(edge.target, descent.step);
                if here > self.epsilon {
                    self.walk(edge.target, descent.rest, here, out);
                }
            }
            self.descend(
                edge.target,
                descent,
                scaled,
                depth_left.saturating_sub(1),
                out,
            );
        }
    }

    pub(crate) fn step_selectivity(&self, node: XsNodeId, step: &ResolvedStep) -> f64 {
        let mut s = 1.0;
        for predicate in &step.predicates {
            s *= self.branch_selectivity(node, predicate);
            if s <= self.epsilon {
                return 0.0;
            }
        }
        s
    }

    /// Branch selectivity at `node`. One-child-step branches read the
    /// joint histogram exactly; anything deeper recurses with the
    /// independence fall-back of §4.3.
    pub(crate) fn branch_selectivity(&self, node: XsNodeId, predicate: &ResolvedPath) -> f64 {
        if predicate.steps.len() == 1 {
            let step = &predicate.steps[0];
            if step.axis == Axis::Child && step.predicates.is_empty() {
                let Some(label) = step.label else { return 0.0 };
                let xnode = self.sketch.node(node);
                let dims: Vec<usize> = xnode
                    .edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| self.sketch.node(e.target).label == label)
                    .map(|(dim, _)| dim)
                    .collect();
                if dims.is_empty() {
                    return 0.0;
                }
                return xnode.histogram.prob_any_ge1(&dims);
            }
        }
        let counts = self.path_counts(node, &predicate.steps);
        if counts.is_empty() {
            return 0.0;
        }
        if counts.values().any(|&k| k >= 1.0) {
            return 1.0;
        }
        let miss: f64 = counts.values().map(|&k| 1.0 - k.clamp(0.0, 1.0)).product();
        (1.0 - miss).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::XSketch;
    use axqa_eval::{selectivity as exact_selectivity, DocIndex};
    use axqa_query::parse_twig;
    use axqa_synopsis::build_stable;
    use axqa_xml::parse_document;

    fn full_partition(stable: &axqa_synopsis::StableSummary) -> (Vec<u32>, usize) {
        ((0..stable.len() as u32).collect(), stable.len())
    }

    #[test]
    fn exact_on_uncompressed_partition() {
        let doc = parse_document(
            "<d><a><p><k/></p><p><k/><k/></p><n/></a>\
             <a><n/><p><k/></p><b><t/></b></a></d>",
        )
        .unwrap();
        let stable = build_stable(&doc);
        let (partition, n) = full_partition(&stable);
        let xs = XSketch::from_partition(&stable, &partition, n, 10_000);
        let index = DocIndex::build(&doc);
        for twig in [
            "q1: q0 //a\nq2: q1 //p\nq3: q2 //k",
            "q1: q0 //a[//b]\nq2: q1 //p",
            "q1: q0 //a[n]\nq2: q1 //k",
        ] {
            let query = parse_twig(twig).unwrap();
            let exact = exact_selectivity(&doc, &index, &query);
            let est = xs_estimate_selectivity(&xs, &query, &XsEvalConfig::default());
            assert!(
                (exact - est).abs() < 1e-9 * exact.max(1.0),
                "{twig}: exact {exact} vs est {est}"
            );
        }
    }

    #[test]
    fn figure3_label_split_estimates_ten() {
        // §3.1: the zero-error twig-XSketch estimates sel(//a/b/c) = 10
        // on both documents.
        for src in [
            "<r><a><b><c/></b><b><c/><c/><c/><c/></b></a>\
             <a><b><c/></b><b><c/><c/><c/><c/></b></a></r>",
            "<r><a><b><c/></b><b><c/></b></a>\
             <a><b><c/><c/><c/><c/></b><b><c/><c/><c/><c/></b></a></r>",
        ] {
            let doc = parse_document(src).unwrap();
            let stable = build_stable(&doc);
            let (partition, n) = XSketch::label_split_partition(&stable);
            let xs = XSketch::from_partition(&stable, &partition, n, 100);
            let query = parse_twig("q1: q0 //a\nq2: q1 /b\nq3: q2 /c").unwrap();
            let est = xs_estimate_selectivity(&xs, &query, &XsEvalConfig::default());
            assert!((est - 10.0).abs() < 1e-9, "est = {est}");
        }
    }

    #[test]
    fn histogram_branch_beats_average_on_correlation() {
        // Half the a's have 2 b's, half have none. The joint histogram
        // knows P(b ≥ 1) = 0.5 exactly.
        let doc = parse_document("<r><a><b/><b/></a><a/></r>").unwrap();
        let stable = build_stable(&doc);
        let (partition, n) = XSketch::label_split_partition(&stable);
        let xs = XSketch::from_partition(&stable, &partition, n, 100);
        let query = parse_twig("q1: q0 //a[b]").unwrap();
        let est = xs_estimate_selectivity(&xs, &query, &XsEvalConfig::default());
        assert!((est - 1.0).abs() < 1e-9, "est = {est}"); // 2 a's × 0.5
    }

    #[test]
    fn empty_answer_is_zero() {
        let doc = parse_document("<r><a/></r>").unwrap();
        let stable = build_stable(&doc);
        let (partition, n) = XSketch::label_split_partition(&stable);
        let xs = XSketch::from_partition(&stable, &partition, n, 100);
        let query = parse_twig("q1: q0 //zzz").unwrap();
        assert_eq!(
            xs_estimate_selectivity(&xs, &query, &XsEvalConfig::default()),
            0.0
        );
    }
}
