//! The engine: collects sources and manifests, runs the rule
//! registry, applies the baseline ratchet, and renders results as
//! human text or machine JSON (schema `axqa-lint/1`).
//!
//! The xtask binary is a thin flag-parser over [`run`]; everything
//! testable lives here.

use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::{Allow, Baseline, BASELINE_PATH};
use crate::{
    api_surface, hotpath, reach, registry, Finding, Scope, Severity, SourceFile, Workspace,
};

/// What `run` should rewrite on disk besides checking.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateFlags {
    /// Rewrite `lint-baseline.toml` to exactly cover current findings
    /// (hand-maintained `[[alloc-ok]]` grants are preserved).
    pub baseline: bool,
    /// Rewrite `lint/api-surface.txt` from the current sources.
    pub api_surface: bool,
    /// Rewrite `lint/panic-surface.txt` from the current call graph.
    pub panic_surface: bool,
    /// Rewrite `lint/alloc-surface.txt` from the current hot cones.
    pub alloc_surface: bool,
}

/// The result of one engine run, ready for rendering.
#[derive(Debug)]
pub struct Outcome {
    /// All findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// `baselined[i]` — finding `i` is grandfathered by the baseline.
    pub baselined: Vec<bool>,
    /// Baseline entries whose allowance exceeds current findings.
    pub stale: Vec<Allow>,
    /// How many source files were tokenized and checked.
    pub files_scanned: usize,
    /// `(id, severity, description)` of every registered rule.
    pub rules: Vec<(&'static str, Severity, &'static str)>,
    /// True when `--update-baseline` rewrote the baseline file.
    pub wrote_baseline: bool,
    /// True when `--update-api-surface` rewrote the snapshot.
    pub wrote_api_surface: bool,
    /// True when `--update-panic-surface` rewrote the snapshot.
    pub wrote_panic_surface: bool,
    /// True when `--update-alloc-surface` rewrote the snapshot.
    pub wrote_alloc_surface: bool,
}

impl Outcome {
    /// Findings not covered by the baseline.
    pub fn new_findings(&self) -> usize {
        self.baselined.iter().filter(|b| !**b).count()
    }

    /// The gate passes when every error-severity finding is baselined.
    pub fn gate_passes(&self) -> bool {
        self.findings
            .iter()
            .zip(&self.baselined)
            .all(|(f, covered)| *covered || f.severity != Severity::Error)
    }
}

/// Walks up from the current directory to the manifest that declares
/// `[workspace]`.
pub fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)
                .map_err(|e| format!("read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("could not locate the workspace root (no [workspace] Cargo.toml)".into());
        }
    }
}

/// One full engine run rooted at `root`.
pub fn run(root: &Path, update: UpdateFlags) -> Result<Outcome, String> {
    let mut workspace = collect_workspace(root)?;

    // The baseline is parsed before anything renders or checks:
    // `[[alloc-ok]]` grants feed the hot-path analysis (granted sites
    // never seed the fixpoint), unlike `[[allow]]` entries which apply
    // to finished findings.
    let baseline_path = root.join(BASELINE_PATH);
    let mut baseline = if baseline_path.is_file() {
        let text = fs::read_to_string(&baseline_path)
            .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
        Baseline::parse(&text)?
    } else {
        Baseline::default()
    };
    workspace.alloc_grants = baseline.alloc_ok.clone();

    let mut wrote_api_surface = false;
    if update.api_surface {
        let rendered = api_surface::render_surface(&workspace);
        let path = root.join(api_surface::SNAPSHOT_PATH);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
        }
        fs::write(&path, &rendered).map_err(|e| format!("write {}: {e}", path.display()))?;
        workspace.api_surface_snapshot = Some(rendered);
        wrote_api_surface = true;
    }

    let mut wrote_panic_surface = false;
    if update.panic_surface {
        let rendered = reach::render_surface(&workspace);
        let path = root.join(reach::SNAPSHOT_PATH);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
        }
        fs::write(&path, &rendered).map_err(|e| format!("write {}: {e}", path.display()))?;
        workspace.panic_surface_snapshot = Some(rendered);
        wrote_panic_surface = true;
    }

    let mut wrote_alloc_surface = false;
    if update.alloc_surface {
        let rendered = hotpath::render_surface(&workspace);
        let path = root.join(hotpath::SNAPSHOT_PATH);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
        }
        fs::write(&path, &rendered).map_err(|e| format!("write {}: {e}", path.display()))?;
        workspace.alloc_surface_snapshot = Some(rendered);
        wrote_alloc_surface = true;
    }

    let rules = registry();
    let mut findings = Vec::new();
    {
        let _span = axqa_obs::span("lint.rules");
        for rule in &rules {
            match rule.scope() {
                Scope::File => {
                    for file in &workspace.files {
                        rule.check_file(file, &mut findings);
                    }
                }
                Scope::Workspace => rule.check_workspace(&workspace, &mut findings),
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let mut wrote_baseline = false;
    if update.baseline {
        // `[[allow]]` entries regenerate from the current findings;
        // `[[alloc-ok]]` grants are hand-maintained and carried over.
        let alloc_ok = std::mem::take(&mut baseline.alloc_ok);
        baseline = Baseline::from_findings(&findings);
        baseline.alloc_ok = alloc_ok;
        fs::write(&baseline_path, baseline.render())
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        wrote_baseline = true;
    }

    let applied = baseline.apply(&findings);
    Ok(Outcome {
        files_scanned: workspace.files.len(),
        rules: rules
            .iter()
            .map(|r| (r.id(), r.severity(), r.describe()))
            .collect(),
        findings,
        baselined: applied.baselined,
        stale: applied.stale,
        wrote_baseline,
        wrote_api_surface,
        wrote_panic_surface,
        wrote_alloc_surface,
    })
}

/// Collects every workspace source file (crate `src/` trees plus the
/// umbrella root `src/`, vendor excluded by construction), the
/// manifest dependency edges, and the API-surface snapshot.
pub fn collect_workspace(root: &Path) -> Result<Workspace, String> {
    let mut packages: Vec<(String, PathBuf, Vec<String>)> = Vec::new();

    // The umbrella package lives in the workspace manifest itself.
    let root_manifest = read_manifest(&root.join("Cargo.toml"))?;
    packages.push((
        parse_package_name(&root_manifest)
            .ok_or_else(|| "workspace Cargo.toml has no [package] name".to_string())?,
        root.to_path_buf(),
        parse_dependency_names(&root_manifest),
    ));

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let manifest = read_manifest(&dir.join("Cargo.toml"))?;
        let name = parse_package_name(&manifest)
            .ok_or_else(|| format!("{}: no [package] name", dir.join("Cargo.toml").display()))?;
        packages.push((name, dir, parse_dependency_names(&manifest)));
    }

    // Keep only intra-workspace edges; vendor stubs are not layered.
    let names: Vec<String> = packages.iter().map(|(n, _, _)| n.clone()).collect();
    let dep_edges: Vec<(String, Vec<String>)> = packages
        .iter()
        .map(|(name, _, deps)| {
            (
                name.clone(),
                deps.iter().filter(|d| names.contains(d)).cloned().collect(),
            )
        })
        .collect();

    let mut files = Vec::new();
    {
        let _span = axqa_obs::span("lint.tokenize");
        for (name, dir, _) in &packages {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs_files(root, &src, name, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
    }

    let api_surface_snapshot = read_optional(&root.join(api_surface::SNAPSHOT_PATH))?;
    let panic_surface_snapshot = read_optional(&root.join(reach::SNAPSHOT_PATH))?;
    let alloc_surface_snapshot = read_optional(&root.join(hotpath::SNAPSHOT_PATH))?;
    let hot_paths = read_optional(&root.join(hotpath::CONFIG_PATH))?;

    Ok(Workspace {
        files,
        dep_edges,
        api_surface_snapshot,
        panic_surface_snapshot,
        alloc_surface_snapshot,
        hot_paths,
        alloc_grants: Vec::new(),
        graph: std::cell::OnceCell::new(),
    })
}

/// Recursively gathers `.rs` files under `dir` into [`SourceFile`]s.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(root, &path, crate_name, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip {}: {e}", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            let is_bin =
                rel.ends_with("/src/main.rs") || rel == "src/main.rs" || rel.contains("/src/bin/");
            let text =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            out.push(SourceFile::new(rel, crate_name.to_string(), is_bin, text));
        }
    }
    Ok(())
}

fn read_manifest(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))
}

/// Reads a snapshot file that may legitimately not exist yet.
fn read_optional(path: &Path) -> Result<Option<String>, String> {
    if path.is_file() {
        fs::read_to_string(path)
            .map(Some)
            .map_err(|e| format!("read {}: {e}", path.display()))
    } else {
        Ok(None)
    }
}

/// Extracts `name = "…"` from the `[package]` section of a manifest.
pub fn parse_package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_suffix('"') {
                if let Some(name) = rest
                    .strip_prefix("name")
                    .map(str::trim_start)
                    .and_then(|r| r.strip_prefix('='))
                    .map(str::trim_start)
                    .and_then(|r| r.strip_prefix('"'))
                {
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

/// Extracts dependency names from every `[dependencies]` /
/// `[target.….dependencies]` section (dev- and build-dependencies are
/// deliberately excluded — see the layering rule's module docs).
pub fn parse_dependency_names(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]"
                || (line.starts_with("[target.") && line.ends_with(".dependencies]"));
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `axqa-core.workspace = true` or `axqa-core = { path = … }`.
        let name: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if !name.is_empty() {
            deps.push(name);
        }
    }
    deps
}

/// Renders the human-readable report (the default `cargo xtask lint`
/// output).
pub fn render_text(outcome: &Outcome) -> String {
    let mut out = format!(
        "axqa-lint: {} file(s) scanned, {} rule(s)\n",
        outcome.files_scanned,
        outcome.rules.len()
    );
    for (finding, covered) in outcome.findings.iter().zip(&outcome.baselined) {
        let suffix = if *covered { " (baselined)" } else { "" };
        if finding.line > 0 {
            out.push_str(&format!(
                "{}:{}: {} [{}]{}\n",
                finding.file, finding.line, finding.message, finding.rule, suffix
            ));
        } else {
            out.push_str(&format!(
                "{}: {} [{}]{}\n",
                finding.file, finding.message, finding.rule, suffix
            ));
        }
    }
    for allow in &outcome.stale {
        out.push_str(&format!(
            "note: stale baseline entry `{}` in {} (allowance {} exceeds current findings) — \
             run `cargo xtask lint --update-baseline`\n",
            allow.rule, allow.file, allow.count
        ));
    }
    let baselined = outcome
        .findings
        .len()
        .saturating_sub(outcome.new_findings());
    out.push_str(&format!(
        "summary: {} finding(s) — {} baselined, {} new; {} stale baseline entr{}\n",
        outcome.findings.len(),
        baselined,
        outcome.new_findings(),
        outcome.stale.len(),
        if outcome.stale.len() == 1 { "y" } else { "ies" },
    ));
    if outcome.gate_passes() {
        out.push_str("invariant pass clean\n");
    }
    out
}

/// Renders the machine-readable report (schema `axqa-lint/1`), emitted
/// by `cargo xtask lint --format json` and uploaded as a CI artifact.
pub fn render_json(outcome: &Outcome) -> String {
    let mut out = String::from("{\n  \"schema\": \"axqa-lint/1\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n",
        outcome.files_scanned
    ));

    out.push_str("  \"rules\": [\n");
    for (i, (id, severity, describe)) in outcome.rules.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"severity\": {}, \"description\": {}}}{}\n",
            json_string(id),
            json_string(severity.name()),
            json_string(describe),
            if i.saturating_add(1) < outcome.rules.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"findings\": [\n");
    let total = outcome.findings.len();
    for (i, (finding, covered)) in outcome.findings.iter().zip(&outcome.baselined).enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \
             \"span\": [{}, {}], \"message\": {}, \"baselined\": {}}}{}\n",
            json_string(finding.rule),
            json_string(finding.severity.name()),
            json_string(&finding.file),
            finding.line,
            finding.span.0,
            finding.span.1,
            json_string(&finding.message),
            covered,
            if i.saturating_add(1) < total { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    let baselined = total.saturating_sub(outcome.new_findings());
    out.push_str(&format!(
        "  \"summary\": {{\"total\": {}, \"baselined\": {}, \"new\": {}, \
         \"stale_baseline_entries\": {}}}\n",
        total,
        baselined,
        outcome.new_findings(),
        outcome.stale.len()
    ));
    out.push_str("}\n");
    out
}

/// Escapes a string for JSON output (quotes, backslashes, control
/// characters — all the repo's messages are ASCII-or-UTF-8 text).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len().saturating_add(2));
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_package_names() {
        let manifest = "[package]\nname = \"axqa-core\"\nversion.workspace = true\n";
        assert_eq!(parse_package_name(manifest), Some("axqa-core".to_string()));
        assert_eq!(parse_package_name("[workspace]\nmembers = []\n"), None);
    }

    #[test]
    fn parses_dependency_names_across_styles() {
        let manifest = "\
[package]
name = \"x\"

[dependencies]
axqa-xml.workspace = true
axqa-core = { path = \"../core\" }
rand.workspace = true
# comment
[dev-dependencies]
proptest.workspace = true
";
        assert_eq!(
            parse_dependency_names(manifest),
            vec![
                "axqa-xml".to_string(),
                "axqa-core".to_string(),
                "rand".to_string()
            ]
        );
    }

    #[test]
    fn json_escaping_covers_quotes_and_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    fn outcome_with(findings: Vec<Finding>, baselined: Vec<bool>) -> Outcome {
        Outcome {
            findings,
            baselined,
            stale: Vec::new(),
            files_scanned: 1,
            rules: vec![("no-unwrap", Severity::Error, "no unwraps")],
            wrote_baseline: false,
            wrote_api_surface: false,
            wrote_panic_surface: false,
            wrote_alloc_surface: false,
        }
    }

    fn sample_finding() -> Finding {
        Finding {
            rule: "no-unwrap",
            severity: Severity::Error,
            file: "crates/core/src/build.rs".to_string(),
            line: 12,
            span: (100, 109),
            message: "`.unwrap()` in non-test code".to_string(),
        }
    }

    #[test]
    fn gate_fails_on_new_findings_only() {
        let failing = outcome_with(vec![sample_finding()], vec![false]);
        assert!(!failing.gate_passes());
        assert_eq!(failing.new_findings(), 1);

        let grandfathered = outcome_with(vec![sample_finding()], vec![true]);
        assert!(grandfathered.gate_passes());
        assert_eq!(grandfathered.new_findings(), 0);
    }

    #[test]
    fn text_rendering_mentions_baseline_status() {
        let outcome = outcome_with(vec![sample_finding()], vec![true]);
        let text = render_text(&outcome);
        assert!(text.contains("crates/core/src/build.rs:12:"));
        assert!(text.contains("(baselined)"));
        assert!(text.contains("invariant pass clean"));
    }

    #[test]
    fn json_rendering_has_schema_and_summary() {
        let outcome = outcome_with(vec![sample_finding()], vec![false]);
        let json = render_json(&outcome);
        assert!(json.contains("\"schema\": \"axqa-lint/1\""));
        assert!(json.contains("\"new\": 1"));
        assert!(json.contains("\"baselined\": false"));
    }
}
